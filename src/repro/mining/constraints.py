"""Constrained frequent-set mining (the paper's references [11, 14, 19]).

The introduction lists *constrained frequent sets* among the pattern
classes whose support counting the OSSM serves. This module provides
the classical constraint taxonomy and a constrained Apriori that pushes
constraints into the level-wise loop:

* **anti-monotone** constraints (if an itemset violates, every superset
  violates: ``max(price) <= v``, ``|X| <= k``, ``X ⊆ S``) are pushed
  *into candidate generation* — violating candidates are dropped before
  counting, exactly like an OSSM bound miss, and the two pruners
  compose;
* **monotone** constraints (once satisfied, always satisfied for
  supersets: ``min(price) <= v``, ``X ⊇ S``, ``|X| >= k``) cannot prune
  candidates safely; they filter the *output*.

Constraints over item attributes take a vector of per-item values
(price, weight, …), mirroring the 2-variable constraint work of [11].
"""

from __future__ import annotations

import abc
from collections.abc import Iterable, Sequence

import numpy as np

from ..data.transactions import TransactionDatabase
from .apriori import Apriori
from .base import MiningResult
from .counting import SupportCounter
from .pruning import CandidatePruner, NullPruner

__all__ = [
    "Constraint",
    "MaxSize",
    "MinSize",
    "SubsetOf",
    "SupersetOf",
    "ExcludesAll",
    "MaxAttribute",
    "MinAttributeAtMost",
    "ConstrainedApriori",
    "constrained_apriori",
]

Itemset = tuple[int, ...]


class Constraint(abc.ABC):
    """A predicate over itemsets with a declared pushing property."""

    #: True when violation by X implies violation by every superset.
    anti_monotone: bool = False
    #: True when satisfaction by X implies satisfaction by supersets.
    monotone: bool = False

    @abc.abstractmethod
    def satisfied(self, itemset: Itemset) -> bool:
        """Does *itemset* satisfy the constraint?"""


class MaxSize(Constraint):
    """``|X| <= limit`` (anti-monotone)."""

    anti_monotone = True

    def __init__(self, limit: int) -> None:
        if limit < 1:
            raise ValueError("limit must be >= 1")
        self.limit = int(limit)

    def satisfied(self, itemset: Itemset) -> bool:
        return len(itemset) <= self.limit


class MinSize(Constraint):
    """``|X| >= limit`` (monotone)."""

    monotone = True

    def __init__(self, limit: int) -> None:
        if limit < 1:
            raise ValueError("limit must be >= 1")
        self.limit = int(limit)

    def satisfied(self, itemset: Itemset) -> bool:
        return len(itemset) >= self.limit


class SubsetOf(Constraint):
    """``X ⊆ allowed`` (anti-monotone): only items from a whitelist."""

    anti_monotone = True

    def __init__(self, allowed: Iterable[int]) -> None:
        self.allowed = frozenset(int(i) for i in allowed)

    def satisfied(self, itemset: Itemset) -> bool:
        return self.allowed.issuperset(itemset)


class SupersetOf(Constraint):
    """``X ⊇ required`` (monotone): all the required items appear."""

    monotone = True

    def __init__(self, required: Iterable[int]) -> None:
        self.required = frozenset(int(i) for i in required)

    def satisfied(self, itemset: Itemset) -> bool:
        return self.required.issubset(itemset)


class ExcludesAll(Constraint):
    """``X ∩ banned = ∅`` (anti-monotone): a blacklist."""

    anti_monotone = True

    def __init__(self, banned: Iterable[int]) -> None:
        self.banned = frozenset(int(i) for i in banned)

    def satisfied(self, itemset: Itemset) -> bool:
        return self.banned.isdisjoint(itemset)


class MaxAttribute(Constraint):
    """``max(attribute[x] for x in X) <= bound`` (anti-monotone).

    E.g. "every item costs at most 10 euros".
    """

    anti_monotone = True

    def __init__(self, attribute: Sequence[float], bound: float) -> None:
        self.attribute = np.asarray(attribute, dtype=float)
        self.bound = float(bound)

    def satisfied(self, itemset: Itemset) -> bool:
        return all(self.attribute[item] <= self.bound for item in itemset)


class MinAttributeAtMost(Constraint):
    """``min(attribute[x] for x in X) <= bound`` (monotone).

    E.g. "the basket contains at least one item under 2 euros".
    """

    monotone = True

    def __init__(self, attribute: Sequence[float], bound: float) -> None:
        self.attribute = np.asarray(attribute, dtype=float)
        self.bound = float(bound)

    def satisfied(self, itemset: Itemset) -> bool:
        return any(self.attribute[item] <= self.bound for item in itemset)


class _ConstraintPruner(CandidatePruner):
    """Adapter: anti-monotone constraints as a candidate pruner."""

    label = "+constraints"

    def __init__(self, constraints: Sequence[Constraint]) -> None:
        self.constraints = list(constraints)

    def prune(
        self, candidates: Sequence[Itemset], min_support: int
    ) -> list[Itemset]:
        return [
            candidate
            for candidate in candidates
            if all(c.satisfied(candidate) for c in self.constraints)
        ]


class _ChainedPruner(CandidatePruner):
    """Constraints first (cheap predicate), then the support pruner."""

    def __init__(
        self, constraints: _ConstraintPruner, support: CandidatePruner
    ) -> None:
        self.constraints = constraints
        self.support = support
        self.label = support.label + constraints.label

    def prune(
        self, candidates: Sequence[Itemset], min_support: int
    ) -> list[Itemset]:
        survivors = self.constraints.prune(candidates, min_support)
        if not survivors:
            return []
        return self.support.prune(survivors, min_support)

    def candidate_bounds(
        self, candidates: Sequence[Itemset]
    ) -> np.ndarray | None:
        """Bounds of the wrapped support pruner (constraints have none)."""
        return self.support.candidate_bounds(candidates)


class ConstrainedApriori:
    """Apriori with constraint pushing (and optional OSSM pruning).

    Anti-monotone constraints prune candidates (composing with the
    given support *pruner*, e.g. an OSSM); monotone constraints filter
    the result. The frequent map returned contains exactly the frequent
    itemsets satisfying *all* constraints.

    Note: anti-monotone pushing preserves completeness because a
    violating candidate can never be extended back into satisfaction;
    monotone constraints must not prune, or satisfying supersets of
    unsatisfying subsets would be lost.
    """

    name = "constrained-apriori"

    def __init__(
        self,
        constraints: Sequence[Constraint],
        pruner: CandidatePruner | None = None,
        counter: SupportCounter | None = None,
        max_level: int | None = None,
    ) -> None:
        for constraint in constraints:
            if not (constraint.anti_monotone or constraint.monotone):
                raise ValueError(
                    f"{type(constraint).__name__} declares neither "
                    "anti-monotone nor monotone; cannot be pushed or "
                    "post-filtered safely"
                )
        self.constraints = list(constraints)
        self._anti = [c for c in self.constraints if c.anti_monotone]
        self._mono = [c for c in self.constraints if c.monotone]
        self.pruner = pruner if pruner is not None else NullPruner()
        self.counter = counter
        self.max_level = max_level

    def mine(
        self,
        database: TransactionDatabase,
        min_support: float | int,
    ) -> MiningResult:
        """Frequent itemsets satisfying every constraint."""
        combined: CandidatePruner = self.pruner
        if self._anti:
            combined = _ChainedPruner(
                _ConstraintPruner(self._anti), self.pruner
            )
        inner = Apriori(
            pruner=combined, counter=self.counter, max_level=self.max_level
        )
        result = inner.mine(database, min_support)
        result.algorithm = self.name + self.pruner.label
        if self._mono:
            result.frequent = {
                itemset: support
                for itemset, support in result.frequent.items()
                if all(c.satisfied(itemset) for c in self._mono)
            }
        return result


def constrained_apriori(
    database: TransactionDatabase,
    min_support: float | int,
    constraints: Sequence[Constraint],
    pruner: CandidatePruner | None = None,
    max_level: int | None = None,
) -> MiningResult:
    """Functional entry point for :class:`ConstrainedApriori`."""
    miner = ConstrainedApriori(
        constraints, pruner=pruner, max_level=max_level
    )
    return miner.mine(database, min_support)
