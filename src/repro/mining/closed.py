"""Closed and maximal frequent itemsets (the paper's [16, 20, 21]).

The related work cites CHARM (closed sets) and GenMax (maximal sets) as
further pattern classes. This module derives both condensed
representations:

* a frequent itemset is **closed** when no proper superset has the same
  support (Pasquier et al. [16]); the closed sets losslessly encode all
  frequent-set supports;
* it is **maximal** when no proper superset is frequent; the maximal
  sets encode the frequent *family* (but not supports).

Derivation is by post-processing any miner's complete result — which
keeps the functions miner-agnostic (and OSSM-compatible: accelerate the
mining however you like, condense afterwards) — plus a direct
Eclat-based closed miner that skips materializing non-closed sets.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from ..data.transactions import TransactionDatabase
from .base import MiningResult, resolve_min_support

__all__ = [
    "closed_itemsets",
    "maximal_itemsets",
    "mine_closed",
]

Itemset = tuple[int, ...]


def closed_itemsets(result: MiningResult) -> dict[Itemset, int]:
    """The closed itemsets of a complete mining *result*.

    An itemset is closed iff no frequent superset one item larger has
    equal support (checking the +1 shell suffices: support is
    monotone, so a larger equal-support superset implies an
    intermediate one).
    """
    by_size: dict[int, list[Itemset]] = defaultdict(list)
    for itemset in result.frequent:
        by_size[len(itemset)].append(itemset)
    closed: dict[Itemset, int] = {}
    for itemset, support in result.frequent.items():
        shell = by_size.get(len(itemset) + 1, ())
        dominated = any(
            result.frequent[superset] == support
            and set(itemset).issubset(superset)
            for superset in shell
        )
        if not dominated:
            closed[itemset] = support
    return closed


def maximal_itemsets(result: MiningResult) -> dict[Itemset, int]:
    """The maximal frequent itemsets of a complete mining *result*."""
    by_size: dict[int, list[Itemset]] = defaultdict(list)
    for itemset in result.frequent:
        by_size[len(itemset)].append(itemset)
    maximal: dict[Itemset, int] = {}
    for itemset, support in result.frequent.items():
        shell = by_size.get(len(itemset) + 1, ())
        extended = any(
            set(itemset).issubset(superset) for superset in shell
        )
        if not extended:
            maximal[itemset] = support
    return maximal


def mine_closed(
    database: TransactionDatabase,
    min_support: float | int,
    max_level: int | None = None,
) -> MiningResult:
    """Directly mine the closed frequent itemsets (CHARM-style).

    Depth-first vertical search with closure-by-tidset: at each node,
    an extension whose tidset equals the prefix's is absorbed into the
    prefix (it belongs to the closure); only closure representatives
    are emitted. Returns a :class:`MiningResult` whose ``frequent``
    map holds exactly the closed sets.
    """
    import time

    threshold = resolve_min_support(database, min_support)
    result = MiningResult(
        frequent={}, min_support=threshold, algorithm="charm"
    )
    start = time.perf_counter()
    tidsets = database.vertical()
    atoms = [
        (item, tidsets[item])
        for item in range(database.n_items)
        if len(tidsets[item]) >= threshold
    ]
    emitted: dict[Itemset, int] = {}

    def explore(prefix: Itemset, prefix_tids, atoms_in) -> None:
        i = 0
        items = list(atoms_in)
        while i < len(items):
            item, tids = items[i]
            new_prefix = tuple(sorted(prefix + (item,)))
            new_tids = (
                np.intersect1d(prefix_tids, tids, assume_unique=True)
                if prefix
                else tids
            )
            if len(new_tids) < threshold:
                i += 1
                continue
            closure = list(new_prefix)
            children = []
            for other, other_tids in items[i + 1:]:
                joined = np.intersect1d(
                    new_tids, other_tids, assume_unique=True
                )
                if len(joined) == len(new_tids):
                    closure.append(other)  # absorbed into the closure
                elif len(joined) >= threshold:
                    children.append((other, joined))
            closure_key = tuple(sorted(closure))
            if max_level is None or len(closure_key) <= max_level:
                previous = emitted.get(closure_key)
                if previous is None or previous < len(new_tids):
                    emitted[closure_key] = len(new_tids)
            if children and (
                max_level is None or len(closure_key) < max_level
            ):
                explore(closure_key, new_tids, children)
            i += 1

    explore((), None, atoms)
    # Subsumption sweep: a closure produced down one branch may be a
    # subset of an equal-support closure from another; drop those.
    by_support: dict[int, list[Itemset]] = defaultdict(list)
    for itemset, support in emitted.items():
        by_support[support].append(itemset)
    for itemset, support in sorted(
        emitted.items(), key=lambda kv: len(kv[0])
    ):
        subsumed = any(
            len(other) > len(itemset) and set(itemset).issubset(other)
            for other in by_support[support]
        )
        if not subsumed:
            result.frequent[itemset] = support
    for itemset in result.frequent:
        result.level(len(itemset)).frequent += 1
    result.elapsed_seconds = time.perf_counter() - start
    return result
