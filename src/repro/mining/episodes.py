"""Frequent-episode mining over event sequences (WINEPI style).

The OSSM paper's introduction lists episodes ([13], Mannila, Toivonen &
Verkamo 1997) among the pattern classes its technique serves; footnote 1
spells out the mapping ("a transaction corresponds to a sequence of
events in a sliding time window"). This module implements the WINEPI
algorithm for both episode flavours and demonstrates the OSSM hook:

* a **parallel episode** is a set of event types; a window supports it
  when every type occurs somewhere in the window — after windowing this
  *is* frequent-itemset mining, so the OSSM applies verbatim;
* a **serial episode** is a *sequence* of event types; a window
  supports it when they occur in that order. A serial episode's support
  never exceeds its parallel shadow's (drop the order), which never
  exceeds the OSSM's Equation (1) bound — so the same structure prunes
  serial candidates before the (much more expensive) order-checking
  scan.

Frequency is window-based: the number of width-``w`` sliding windows
containing the episode.
"""

from __future__ import annotations

import time
from collections.abc import Sequence

from ..data.events import EventSequence, WindowView
from .base import MiningResult, resolve_min_count
from .itemsets import apriori_gen
from .pruning import CandidatePruner, NullPruner

__all__ = ["EpisodeMiner", "mine_parallel_episodes", "mine_serial_episodes"]

Episode = tuple[int, ...]


def _window_supports_serial(
    events: Sequence[tuple[int, int]], episode: Episode
) -> bool:
    """True iff the window's (time, type) events contain the serial
    episode as a subsequence with strictly increasing times."""
    position = 0
    last_time = -1
    for when, event_type in events:
        if event_type == episode[position] and when > last_time:
            position += 1
            last_time = when
            if position == len(episode):
                return True
    return False


def _serial_candidates(frequent_prior: list[Episode]) -> list[Episode]:
    """Join serial episodes: A + B[-1] when A[1:] == B[:-1].

    Unlike itemsets, order matters and repeats are allowed across
    positions (but not adjacent duplicates at level 2, which windows
    with strictly increasing times can still support — we allow them;
    counting decides).
    """
    prior = set(frequent_prior)
    candidates = []
    for a in frequent_prior:
        for b in frequent_prior:
            if a[1:] == b[:-1]:
                candidate = a + (b[-1],)
                # Subepisode pruning: every contiguous-drop
                # subsequence of length k-1 must be frequent.
                if all(
                    candidate[:i] + candidate[i + 1:] in prior
                    for i in range(len(candidate))
                ):
                    candidates.append(candidate)
    return sorted(set(candidates))


class EpisodeMiner:
    """WINEPI miner over an :class:`~repro.data.events.EventSequence`.

    Parameters
    ----------
    width:
        Sliding-window width (time units).
    kind:
        ``"parallel"`` or ``"serial"``.
    pruner:
        Candidate pruner consulted before support counting. For serial
        episodes, candidates are pruned through their parallel shadow
        (sorted type set) — sound by the support-domination chain in
        the module docstring. Build the pruner's OSSM over
        ``WindowView(sequence, width).to_database()``.
    max_level:
        Optional cap on episode length.
    """

    def __init__(
        self,
        width: int,
        kind: str = "parallel",
        pruner: CandidatePruner | None = None,
        max_level: int | None = None,
    ) -> None:
        if kind not in ("parallel", "serial"):
            raise ValueError('kind must be "parallel" or "serial"')
        if width < 1:
            raise ValueError("width must be >= 1")
        self.width = int(width)
        self.kind = kind
        self.pruner = pruner if pruner is not None else NullPruner()
        self.max_level = max_level
        self.name = f"winepi-{kind}"

    # -- counting ----------------------------------------------------------

    def _count_parallel(
        self, windows: list[frozenset[int]], candidates: list[Episode]
    ) -> dict[Episode, int]:
        counts = {candidate: 0 for candidate in candidates}
        for window in windows:
            for candidate in candidates:
                if window.issuperset(candidate):
                    counts[candidate] += 1
        return counts

    def _count_serial(
        self,
        windows: list[list[tuple[int, int]]],
        window_sets: list[frozenset[int]],
        candidates: list[Episode],
    ) -> dict[Episode, int]:
        counts = {candidate: 0 for candidate in candidates}
        shadows = {
            candidate: frozenset(candidate) for candidate in candidates
        }
        for events, present in zip(windows, window_sets):
            for candidate in candidates:
                if not shadows[candidate].issubset(present):
                    continue
                if _window_supports_serial(events, candidate):
                    counts[candidate] += 1
        return counts

    def _prune(
        self,
        candidates: list[Episode],
        threshold: int,
        stats,
    ) -> list[Episode]:
        """Bound-prune via the parallel shadow; dedupe shadow lookups."""
        if isinstance(self.pruner, NullPruner):
            stats.candidates_counted = len(candidates)
            return candidates
        shadows = [tuple(sorted(set(candidate))) for candidate in candidates]
        # Serial episodes may repeat a type, so shadows of one level can
        # mix cardinalities; prune size class by size class.
        by_size: dict[int, list[Episode]] = {}
        for shadow in set(shadows):
            by_size.setdefault(len(shadow), []).append(shadow)
        kept_shadows: set[Episode] = set()
        for group in by_size.values():
            kept_shadows.update(self.pruner.prune(sorted(group), threshold))
        survivors = [
            candidate
            for candidate, shadow in zip(candidates, shadows)
            if shadow in kept_shadows
        ]
        stats.candidates_pruned = len(candidates) - len(survivors)
        stats.candidates_counted = len(survivors)
        return survivors

    # -- driver ------------------------------------------------------------

    def mine(
        self,
        sequence: EventSequence,
        min_support: float | int,
    ) -> MiningResult:
        """Find all frequent episodes of *sequence* at *min_support*.

        A float threshold is relative to the number of windows; an int
        is an absolute window count.
        """
        view = WindowView(sequence, self.width)
        windows = [view.window_events(i) for i in range(view.n_windows)]
        window_sets = [
            frozenset(event_type for _, event_type in events)
            for events in windows
        ]

        threshold = resolve_min_count(view.n_windows, min_support)
        result = MiningResult(
            frequent={},
            min_support=threshold,
            algorithm=self.name + self.pruner.label,
        )
        start = time.perf_counter()

        # Level 1: count singleton episodes per window.
        counts = [0] * sequence.n_types
        for present in window_sets:
            for event_type in present:
                counts[event_type] += 1
        level1 = result.level(1)
        level1.candidates_generated = sequence.n_types
        singles = [(t,) for t in range(sequence.n_types)]
        survivors = self._prune(singles, threshold, level1)
        frequent_prev = []
        for (event_type,) in survivors:
            if counts[event_type] >= threshold:
                result.frequent[(event_type,)] = counts[event_type]
                frequent_prev.append((event_type,))
        level1.frequent = len(frequent_prev)

        k = 2
        while frequent_prev and (self.max_level is None or k <= self.max_level):
            if self.kind == "parallel":
                candidates = apriori_gen(frequent_prev)
            else:
                candidates = _serial_candidates(frequent_prev)
            stats = result.level(k)
            stats.candidates_generated = len(candidates)
            if not candidates:
                break
            candidates = self._prune(candidates, threshold, stats)
            if self.kind == "parallel":
                counted = self._count_parallel(window_sets, candidates)
            else:
                counted = self._count_serial(
                    windows, window_sets, candidates
                )
            frequent_prev = sorted(
                episode
                for episode, support in counted.items()
                if support >= threshold
            )
            for episode in frequent_prev:
                result.frequent[episode] = counted[episode]
            stats.frequent = len(frequent_prev)
            k += 1

        result.elapsed_seconds = time.perf_counter() - start
        return result


def mine_parallel_episodes(
    sequence: EventSequence,
    width: int,
    min_support: float | int,
    pruner: CandidatePruner | None = None,
    max_level: int | None = None,
) -> MiningResult:
    """Functional entry point for parallel-episode mining."""
    miner = EpisodeMiner(
        width, kind="parallel", pruner=pruner, max_level=max_level
    )
    return miner.mine(sequence, min_support)


def mine_serial_episodes(
    sequence: EventSequence,
    width: int,
    min_support: float | int,
    pruner: CandidatePruner | None = None,
    max_level: int | None = None,
) -> MiningResult:
    """Functional entry point for serial-episode mining."""
    miner = EpisodeMiner(
        width, kind="serial", pruner=pruner, max_level=max_level
    )
    return miner.mine(sequence, min_support)
