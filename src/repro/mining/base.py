"""Shared types for the mining algorithms.

Every miner returns a :class:`MiningResult`: the frequent itemsets with
their exact supports plus per-level accounting — candidates generated,
candidates pruned by the OSSM (or another pruner) *before* counting,
and candidates actually counted. The accounting is what the paper's
Figure 4(b) and the Section 7 table report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable

from ..data.transactions import TransactionDatabase

__all__ = [
    "LevelStats",
    "MiningResult",
    "as_itemset",
    "resolve_min_count",
    "resolve_min_support",
]

Itemset = tuple[int, ...]


def resolve_min_count(total: int, min_support: float | int) -> int:
    """Normalize a support threshold to an absolute count out of *total*.

    Floats in ``(0, 1]`` are relative thresholds (the way the paper
    quotes "1 %"); ints are absolute counts. The result is at least 1:
    a pattern must occur to be frequent.
    """
    if isinstance(min_support, bool):
        raise TypeError("min_support must be a number, not bool")
    if isinstance(min_support, float):
        if not 0.0 < min_support <= 1.0:
            raise ValueError("relative min_support must lie in (0, 1]")
        import math

        return max(1, math.ceil(min_support * total))
    if min_support < 1:
        raise ValueError("absolute min_support must be >= 1")
    return int(min_support)


def resolve_min_support(
    database: TransactionDatabase, min_support: float | int
) -> int:
    """:func:`resolve_min_count` against a transaction database's size."""
    return resolve_min_count(len(database), min_support)


@dataclass
class LevelStats:
    """Candidate accounting for one level (itemset cardinality).

    ``candidates_generated`` counts the raw output of candidate
    generation; ``candidates_pruned`` how many of those a pruner (the
    OSSM, a DHP hash table, …) removed before counting;
    ``candidates_counted`` how many were actually frequency-counted
    against the data; ``frequent`` how many turned out frequent.
    """

    level: int
    candidates_generated: int = 0
    candidates_pruned: int = 0
    candidates_counted: int = 0
    frequent: int = 0


@dataclass
class MiningResult:
    """Frequent itemsets plus the per-level cost accounting.

    Attributes
    ----------
    frequent:
        Mapping from itemset (sorted tuple) to exact support.
    min_support:
        The absolute threshold used.
    algorithm:
        Name of the miner (``"apriori"``, ``"dhp"``, …) plus any
        pruner suffix (``"apriori+ossm"``).
    elapsed_seconds:
        Wall-clock mining time (the paper's "runtime of Apriori with or
        without the OSSM").
    levels:
        Per-cardinality accounting, index 0 unused (levels start at 1).
    """

    frequent: dict[Itemset, int]
    min_support: int
    algorithm: str
    elapsed_seconds: float = 0.0
    levels: list[LevelStats] = field(default_factory=list)

    def level(self, k: int) -> LevelStats:
        """Stats of level *k* (>= 1), creating empty levels as needed.

        Raises
        ------
        ValueError
            If ``k < 1`` — levels are 1-indexed cardinalities; an
            invalid index must not silently grow the level list.
        """
        if k < 1:
            raise ValueError(f"level must be >= 1, got {k}")
        while len(self.levels) < k:
            self.levels.append(LevelStats(level=len(self.levels) + 1))
        return self.levels[k - 1]

    def itemsets_of_size(self, k: int) -> dict[Itemset, int]:
        """Frequent itemsets of cardinality *k* with their supports."""
        return {
            itemset: support
            for itemset, support in self.frequent.items()
            if len(itemset) == k
        }

    @property
    def n_frequent(self) -> int:
        """Total number of frequent itemsets found."""
        return len(self.frequent)

    @property
    def max_level(self) -> int:
        """Largest cardinality with at least one frequent itemset."""
        return max((len(itemset) for itemset in self.frequent), default=0)

    def candidates_counted(self, k: int | None = None) -> int:
        """Candidates actually counted, at level *k* or in total."""
        if k is not None:
            return self.level(k).candidates_counted if k <= len(self.levels) else 0
        return sum(stats.candidates_counted for stats in self.levels)

    def candidates_generated(self, k: int | None = None) -> int:
        """Candidates generated, at level *k* or in total."""
        if k is not None:
            return self.level(k).candidates_generated if k <= len(self.levels) else 0
        return sum(stats.candidates_generated for stats in self.levels)

    def same_itemsets(self, other: "MiningResult") -> bool:
        """True iff two results found exactly the same itemsets+supports."""
        return self.frequent == other.frequent

    def sorted_itemsets(self) -> list[tuple[Itemset, int]]:
        """Itemsets sorted by (size, lexicographic) for stable output."""
        return sorted(
            self.frequent.items(), key=lambda kv: (len(kv[0]), kv[0])
        )


def as_itemset(items: Iterable[int]) -> Itemset:
    """Canonical (sorted, deduplicated) itemset tuple."""
    return tuple(sorted(set(int(i) for i in items)))
