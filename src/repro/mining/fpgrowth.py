"""FP-growth (Han, Pei & Yin, SIGMOD 2000) — the candidate-free baseline.

The paper's related-work foil: a miner that never generates candidates,
so an OSSM has nothing to prune for it. We implement it (a) to verify
every candidate-based miner's output against an independent algorithm,
and (b) to let the benchmarks situate Apriori+OSSM against the
candidate-free approach. The FP-tree is built *per query* (it depends on
the support threshold), which is precisely the query-dependence the
OSSM avoids (Section 3 of the paper).
"""

from __future__ import annotations

import time
from collections.abc import Iterable

from ..data.transactions import TransactionDatabase
from .base import MiningResult, resolve_min_support

__all__ = ["FPGrowth", "fpgrowth"]

Itemset = tuple[int, ...]


class _Node:
    __slots__ = ("item", "count", "parent", "children", "link")

    def __init__(self, item: int, parent: "._Node | None") -> None:
        self.item = item
        self.count = 0
        self.parent = parent
        self.children: dict[int, _Node] = {}
        self.link: _Node | None = None


class _Tree:
    """One FP-tree: prefix-tree plus per-item node links."""

    def __init__(self) -> None:
        self.root = _Node(-1, None)
        self.header: dict[int, _Node] = {}
        self.item_counts: dict[int, int] = {}

    def insert(self, items: Iterable[int], count: int) -> None:
        node = self.root
        for item in items:
            child = node.children.get(item)
            if child is None:
                child = _Node(item, node)
                node.children[item] = child
                # Thread the new node onto the front of the item's link
                # list (order within the list is irrelevant).
                child.link = self.header.get(item)
                self.header[item] = child
            child.count += count
            self.item_counts[item] = self.item_counts.get(item, 0) + count
            node = child

    def prefix_paths(self, item: int) -> list[tuple[list[int], int]]:
        """Conditional pattern base of *item*: (path-to-root, count) pairs."""
        paths = []
        node = self.header.get(item)
        while node is not None:
            path: list[int] = []
            parent = node.parent
            while parent is not None and parent.item != -1:
                path.append(parent.item)
                parent = parent.parent
            if path:
                path.reverse()
                paths.append((path, node.count))
            node = node.link
        return paths

    def single_path(self) -> list[tuple[int, int]] | None:
        """If the tree is one chain, its (item, count) list; else None."""
        items = []
        node = self.root
        while node.children:
            if len(node.children) > 1:
                return None
            (node,) = node.children.values()
            items.append((node.item, node.count))
        return items


class FPGrowth:
    """FP-growth miner.

    Parameters
    ----------
    max_level:
        Optional cap on the size of reported itemsets (for parity with
        the candidate-based miners' ``max_level``).
    """

    name = "fp-growth"

    def __init__(self, max_level: int | None = None) -> None:
        self.max_level = max_level

    def mine(
        self,
        database: TransactionDatabase,
        min_support: float | int,
    ) -> MiningResult:
        """Find all frequent itemsets of *database* at *min_support*."""
        threshold = resolve_min_support(database, min_support)
        result = MiningResult(
            frequent={}, min_support=threshold, algorithm=self.name
        )
        start = time.perf_counter()

        supports = database.item_supports()
        frequent_items = [
            item for item in range(database.n_items)
            if supports[item] >= threshold
        ]
        # FP order: descending support, canonical tie-break.
        rank = {
            item: position
            for position, item in enumerate(
                sorted(frequent_items, key=lambda i: (-supports[i], i))
            )
        }
        tree = _Tree()
        for txn in database:
            ordered = sorted(
                (item for item in txn if item in rank),
                key=rank.__getitem__,
            )
            if ordered:
                tree.insert(ordered, 1)

        self._grow(tree, (), threshold, result.frequent)
        for itemset, support in result.frequent.items():
            result.level(len(itemset)).frequent += 1

        result.elapsed_seconds = time.perf_counter() - start
        return result

    def _grow(
        self,
        tree: _Tree,
        suffix: Itemset,
        threshold: int,
        out: dict[Itemset, int],
    ) -> None:
        if self.max_level is not None and len(suffix) >= self.max_level:
            return
        chain = tree.single_path()
        if chain is not None:
            self._emit_chain(chain, suffix, threshold, out)
            return
        items = [
            item
            for item, count in tree.item_counts.items()
            if count >= threshold
        ]
        # Process least-frequent first (classic bottom-up order).
        items.sort(key=lambda i: (tree.item_counts[i], -i), reverse=False)
        for item in items:
            support = tree.item_counts[item]
            new_suffix = tuple(sorted(suffix + (item,)))
            out[new_suffix] = support
            conditional = _Tree()
            for path, count in tree.prefix_paths(item):
                conditional.insert(path, count)
            # Re-filter the conditional tree to frequent items only.
            pruned = _Tree()
            keep = {
                i
                for i, c in conditional.item_counts.items()
                if c >= threshold
            }
            if keep:
                for path, count in self._flatten(conditional):
                    kept = [i for i in path if i in keep]
                    if kept:
                        pruned.insert(kept, count)
                self._grow(pruned, new_suffix, threshold, out)

    @staticmethod
    def _flatten(tree: _Tree) -> list[tuple[list[int], int]]:
        """Decompose a tree back into weighted root-to-node paths."""
        paths: list[tuple[list[int], int]] = []

        def walk(node: _Node, prefix: list[int]) -> None:
            extended = prefix + [node.item]
            child_total = sum(c.count for c in node.children.values())
            own = node.count - child_total
            if own > 0:
                paths.append((extended, own))
            for child in node.children.values():
                walk(child, extended)

        for child in tree.root.children.values():
            walk(child, [])
        return paths

    def _emit_chain(
        self,
        chain: list[tuple[int, int]],
        suffix: Itemset,
        threshold: int,
        out: dict[Itemset, int],
    ) -> None:
        """All combinations of a single-path tree are frequent at once."""
        from itertools import combinations

        eligible = [(i, c) for i, c in chain if c >= threshold]
        limit = len(eligible)
        if self.max_level is not None:
            limit = min(limit, self.max_level - len(suffix))
        for size in range(1, limit + 1):
            for combo in combinations(eligible, size):
                support = min(count for _, count in combo)
                if support >= threshold:
                    itemset = tuple(
                        sorted(suffix + tuple(item for item, _ in combo))
                    )
                    out[itemset] = support


def fpgrowth(
    database: TransactionDatabase,
    min_support: float | int,
    max_level: int | None = None,
) -> MiningResult:
    """Functional entry point for :class:`FPGrowth`."""
    return FPGrowth(max_level=max_level).mine(database, min_support)
