"""Checkpoint/resume glue shared by the level-wise miners.

Apriori, DHP, and Partition all advance through discrete units of work
(levels; for Partition, phase 1 plus the phase-2 levels). This module
adapts :class:`~repro.resilience.checkpoint.CheckpointStore` to that
shape so each miner only has to (a) call :func:`level_crash_point` at
the top of every unit, (b) hand its exact loop state to
:meth:`MiningCheckpointer.save_level` at the end of every unit, and
(c) splice the restored state back in when a resume is requested.

Bit-identity contract: the snapshot holds the *objects the loop would
carry forward* — the frequent dict (whose insertion order pickle
preserves), the sorted previous-level itemsets, and the per-level
stats. A resumed run therefore feeds later levels exactly the inputs
an uninterrupted run would have, so its result is bit-identical apart
from wall-clock timings.
"""

from __future__ import annotations

import os
from dataclasses import asdict
from typing import Any

from ..data.transactions import TransactionDatabase
from ..obs.log import get_logger
from ..obs.metrics import get_registry
from ..resilience import CheckpointStore, get_injector, mining_fingerprint
from .base import LevelStats, MiningResult

__all__ = ["MiningCheckpointer", "level_crash_point"]

logger = get_logger(__name__)


def level_crash_point() -> None:
    """Fault-injection point at the top of each mining unit of work.

    Registered as ``mining.level_crash``; select the unit to kill with
    the rule's ``after=`` (units are numbered in execution order, and
    nested miners — Partition's phase-1 local Apriori runs — consume
    hits too, so measure with ``injector.hits()`` when in doubt).
    Free when injection is off.
    """
    injector = get_injector()
    if injector.enabled:
        injector.maybe_raise("mining.level_crash")


class MiningCheckpointer:
    """Per-run facade over :class:`CheckpointStore` for one miner.

    Built through :meth:`open`, which returns ``None`` when no
    checkpoint directory is configured so call sites guard every
    checkpoint action with a single ``if ckpt is not None``.
    """

    def __init__(self, store: CheckpointStore, resume: bool) -> None:
        self.store = store
        self._restored = store.latest() if resume else None
        if self._restored is not None:
            metrics = get_registry()
            if metrics.enabled:
                metrics.inc("resilience.checkpoint.resumed")
            logger.info(
                "resuming from checkpoint level %d in %s",
                self._restored[0], store.directory,
            )

    @classmethod
    def open(
        cls,
        directory: str | os.PathLike | None,
        resume: bool,
        algorithm: str,
        threshold: int,
        database: TransactionDatabase,
        **config: Any,
    ) -> "MiningCheckpointer | None":
        """Build the checkpointer, or ``None`` when checkpointing is off.

        The run fingerprint binds snapshots to the exact database,
        algorithm (including pruner label), threshold, and the
        configuration knobs each miner passes in *config*.
        """
        if directory is None:
            if resume:
                raise ValueError(
                    "resume=True requires checkpoint_dir to be set"
                )
            return None
        fingerprint = mining_fingerprint(
            algorithm, threshold, database, **config
        )
        return cls(CheckpointStore(directory, fingerprint), resume)

    def restored(self) -> tuple[int, dict[str, Any]] | None:
        """``(level, state)`` of the newest valid snapshot, or ``None``."""
        return self._restored

    def save_level(self, level: int, state: dict[str, Any]) -> None:
        """Snapshot *state* as the completed unit *level*."""
        self.store.save(level, state)

    @staticmethod
    def pack_levels(result: MiningResult) -> list[dict[str, int]]:
        """Per-level stats as plain dicts (stable pickle payload)."""
        return [asdict(stats) for stats in result.levels]

    @staticmethod
    def unpack_levels(
        result: MiningResult, packed: list[dict[str, int]]
    ) -> None:
        """Restore :meth:`pack_levels` output into *result*."""
        result.levels = [LevelStats(**entry) for entry in packed]
