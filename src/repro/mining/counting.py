"""Support-counting engines.

Counting candidate frequencies against the data is *the* bottleneck the
OSSM attacks, so the engine is pluggable:

* :class:`SubsetCounter` — the standard per-transaction scheme: trim
  each transaction to the items that occur in any candidate, enumerate
  its size-``k`` combinations, and probe a candidate hash table. Cost
  per transaction is ``C(t', k)`` dictionary probes for a trimmed
  length ``t'``.
* :class:`HashTreeCounter` (:mod:`repro.mining.hash_tree`) — the
  original Apriori hash-tree, provided for fidelity and for workloads
  with long transactions where subset enumeration explodes.

Both return exact counts and are interchangeable in every miner.
"""

from __future__ import annotations

import abc
from itertools import combinations
from collections.abc import Iterable, Sequence

import numpy as np

from ..data.transactions import TransactionDatabase
from ..obs.metrics import get_registry

__all__ = [
    "SupportCounter",
    "SubsetCounter",
    "TidsetCounter",
    "count_supports",
]

Itemset = tuple[int, ...]


class SupportCounter(abc.ABC):
    """Interface of a counting engine.

    Every engine honors one edge-case contract, so engines are
    interchangeable on degenerate inputs as well as ordinary ones:

    * no candidates → ``{}``;
    * empty database → every candidate counts 0;
    * the empty itemset ``()`` → the transaction count (it is contained
      in every transaction, matching ``TransactionDatabase.support``);
    * items outside the database's domain (negative or ≥ ``n_items``)
      → 0, never an error;
    * mixed candidate cardinalities → ``ValueError``.

    ``tests/mining/test_counting.py`` holds the cross-engine contract
    suite; the differential harness in ``tests/parallel`` extends it to
    the parallel counter.
    """

    @abc.abstractmethod
    def count(
        self,
        database: Iterable[Itemset] | TransactionDatabase,
        candidates: Sequence[Itemset],
    ) -> dict[Itemset, int]:
        """Exact support of every candidate (all of one cardinality)."""


class SubsetCounter(SupportCounter):
    """Per-transaction subset enumeration against a candidate hash table."""

    def count(
        self,
        database: Iterable[Itemset] | TransactionDatabase,
        candidates: Sequence[Itemset],
    ) -> dict[Itemset, int]:
        with get_registry().time("counting.subset_seconds"):
            return self._count(database, candidates)

    def _count(
        self,
        database: Iterable[Itemset] | TransactionDatabase,
        candidates: Sequence[Itemset],
    ) -> dict[Itemset, int]:
        counts: dict[Itemset, int] = {
            candidate: 0 for candidate in candidates
        }
        if not counts:
            return counts
        k = len(candidates[0])
        if any(len(candidate) != k for candidate in candidates):
            raise ValueError("candidates must share one cardinality")
        useful = frozenset(
            item for candidate in candidates for item in candidate
        )
        for txn in database:
            if len(txn) < k:
                continue
            trimmed = [item for item in txn if item in useful]
            if len(trimmed) < k:
                continue
            if k == 1:
                for item in trimmed:
                    key = (item,)
                    if key in counts:
                        counts[key] += 1
                continue
            for subset in combinations(trimmed, k):
                if subset in counts:
                    counts[subset] += 1
        return counts


class TidsetCounter(SupportCounter):
    """Vertical counting: per-candidate tidset intersection.

    Work is directly proportional to the number of candidates — the
    property the paper's hash-tree C implementation has and that the
    speedup experiments rely on (pruned candidates cost literally
    nothing). This is also how the original Partition algorithm counts.
    Tidsets are cached per database object, so Apriori's level loop
    pays the verticalization once.
    """

    def __init__(self) -> None:
        self._cache_key: int | None = None
        self._tidsets: list[np.ndarray] | None = None

    def _vertical(self, database: TransactionDatabase) -> list[np.ndarray]:
        if self._cache_key != id(database) or self._tidsets is None:
            self._tidsets = database.vertical()
            self._cache_key = id(database)
        return self._tidsets

    def count(
        self,
        database: Iterable[Itemset] | TransactionDatabase,
        candidates: Sequence[Itemset],
    ) -> dict[Itemset, int]:
        with get_registry().time("counting.tidset_seconds"):
            return self._count(database, candidates)

    def _count(
        self,
        database: Iterable[Itemset] | TransactionDatabase,
        candidates: Sequence[Itemset],
    ) -> dict[Itemset, int]:
        if not isinstance(database, TransactionDatabase):
            database = TransactionDatabase(database)
        counts: dict[Itemset, int] = {}
        if not candidates:
            return counts
        k = len(candidates[0])
        if any(len(candidate) != k for candidate in candidates):
            raise ValueError("candidates must share one cardinality")
        if k == 0:
            # The empty itemset is contained in every transaction.
            return {candidate: len(database) for candidate in candidates}
        tidsets = self._vertical(database)
        n_items = len(tidsets)
        intersect1d = np.intersect1d  # hot loop: bind the lookup once
        for candidate in candidates:
            if any(item < 0 or item >= n_items for item in candidate):
                # Out-of-domain items occur in no transaction.
                counts[candidate] = 0
                continue
            # Intersect rarest-first so the running set shrinks fastest.
            ordered = sorted(candidate, key=lambda item: len(tidsets[item]))
            tids = tidsets[ordered[0]]
            for item in ordered[1:]:
                if len(tids) == 0:
                    break
                tids = intersect1d(tids, tidsets[item], assume_unique=True)
            counts[candidate] = int(len(tids))
        return counts


def count_supports(
    database: Iterable[Itemset] | TransactionDatabase,
    candidates: Sequence[Itemset],
) -> dict[Itemset, int]:
    """Convenience wrapper around the default :class:`SubsetCounter`."""
    return SubsetCounter().count(database, candidates)
