"""Support-counting engines.

Counting candidate frequencies against the data is *the* bottleneck the
OSSM attacks, so the engine is pluggable:

* :class:`SubsetCounter` — the standard per-transaction scheme: trim
  each transaction to the items that occur in any candidate, enumerate
  its size-``k`` combinations, and probe a candidate hash table. Cost
  per transaction is ``C(t', k)`` dictionary probes for a trimmed
  length ``t'``.
* :class:`HashTreeCounter` (:mod:`repro.mining.hash_tree`) — the
  original Apriori hash-tree, provided for fidelity and for workloads
  with long transactions where subset enumeration explodes.

Both return exact counts and are interchangeable in every miner.
"""

from __future__ import annotations

import abc
import os
from itertools import combinations
from collections.abc import Iterable, Sequence
from typing import Any, Callable, ContextManager

import numpy as np

from ..data.transactions import TransactionDatabase
from ..obs.metrics import get_registry
from ..resilience import CircuitBreaker

__all__ = [
    "SupportCounter",
    "SubsetCounter",
    "TidsetCounter",
    "count_supports",
    "make_counter",
    "make_pool",
    "parallel_breaker",
    "register_engine",
    "register_parallel_backend",
    "registered_engines",
    "resolve_engine",
]

Itemset = tuple[int, ...]


class SupportCounter(abc.ABC):
    """Interface of a counting engine.

    Every engine honors one edge-case contract, so engines are
    interchangeable on degenerate inputs as well as ordinary ones:

    * no candidates → ``{}``;
    * empty database → every candidate counts 0;
    * the empty itemset ``()`` → the transaction count (it is contained
      in every transaction, matching ``TransactionDatabase.support``);
    * items outside the database's domain (negative or ≥ ``n_items``)
      → 0, never an error;
    * mixed candidate cardinalities → ``ValueError``.

    ``tests/mining/test_counting.py`` holds the cross-engine contract
    suite; the differential harness in ``tests/parallel`` extends it to
    the parallel counter.
    """

    @abc.abstractmethod
    def count(
        self,
        database: Iterable[Itemset] | TransactionDatabase,
        candidates: Sequence[Itemset],
    ) -> dict[Itemset, int]:
        """Exact support of every candidate (all of one cardinality)."""


class SubsetCounter(SupportCounter):
    """Per-transaction subset enumeration against a candidate hash table."""

    def count(
        self,
        database: Iterable[Itemset] | TransactionDatabase,
        candidates: Sequence[Itemset],
    ) -> dict[Itemset, int]:
        with get_registry().time("counting.subset_seconds"):
            return self._count(database, candidates)

    def _count(
        self,
        database: Iterable[Itemset] | TransactionDatabase,
        candidates: Sequence[Itemset],
    ) -> dict[Itemset, int]:
        counts: dict[Itemset, int] = {
            candidate: 0 for candidate in candidates
        }
        if not counts:
            return counts
        k = len(candidates[0])
        if any(len(candidate) != k for candidate in candidates):
            raise ValueError("candidates must share one cardinality")
        useful = frozenset(
            item for candidate in candidates for item in candidate
        )
        for txn in database:
            if len(txn) < k:
                continue
            trimmed = [item for item in txn if item in useful]
            if len(trimmed) < k:
                continue
            if k == 1:
                for item in trimmed:
                    key = (item,)
                    if key in counts:
                        counts[key] += 1
                continue
            for subset in combinations(trimmed, k):
                if subset in counts:
                    counts[subset] += 1
        return counts


class TidsetCounter(SupportCounter):
    """Vertical counting: per-candidate tidset intersection.

    Work is directly proportional to the number of candidates — the
    property the paper's hash-tree C implementation has and that the
    speedup experiments rely on (pruned candidates cost literally
    nothing). This is also how the original Partition algorithm counts.
    Tidsets are cached per database object, so Apriori's level loop
    pays the verticalization once.
    """

    def __init__(self) -> None:
        self._cache_key: int | None = None
        self._tidsets: list[np.ndarray] | None = None

    def _vertical(self, database: TransactionDatabase) -> list[np.ndarray]:
        if self._cache_key != id(database) or self._tidsets is None:
            self._tidsets = database.vertical()
            self._cache_key = id(database)
        return self._tidsets

    def count(
        self,
        database: Iterable[Itemset] | TransactionDatabase,
        candidates: Sequence[Itemset],
    ) -> dict[Itemset, int]:
        with get_registry().time("counting.tidset_seconds"):
            return self._count(database, candidates)

    def _count(
        self,
        database: Iterable[Itemset] | TransactionDatabase,
        candidates: Sequence[Itemset],
    ) -> dict[Itemset, int]:
        if not isinstance(database, TransactionDatabase):
            database = TransactionDatabase(database)
        counts: dict[Itemset, int] = {}
        if not candidates:
            return counts
        k = len(candidates[0])
        if any(len(candidate) != k for candidate in candidates):
            raise ValueError("candidates must share one cardinality")
        if k == 0:
            # The empty itemset is contained in every transaction.
            return {candidate: len(database) for candidate in candidates}
        tidsets = self._vertical(database)
        n_items = len(tidsets)
        intersect1d = np.intersect1d  # hot loop: bind the lookup once
        for candidate in candidates:
            if any(item < 0 or item >= n_items for item in candidate):
                # Out-of-domain items occur in no transaction.
                counts[candidate] = 0
                continue
            # Intersect rarest-first so the running set shrinks fastest.
            ordered = sorted(candidate, key=lambda item: len(tidsets[item]))
            tids = tidsets[ordered[0]]
            for item in ordered[1:]:
                if len(tids) == 0:
                    break
                tids = intersect1d(tids, tidsets[item], assume_unique=True)
            counts[candidate] = int(len(tids))
        return counts


def count_supports(
    database: Iterable[Itemset] | TransactionDatabase,
    candidates: Sequence[Itemset],
) -> dict[Itemset, int]:
    """Convenience wrapper around the default :class:`SubsetCounter`."""
    return SubsetCounter().count(database, candidates)


# -- engine registry ---------------------------------------------------------
#
# Every counting engine the package ships registers itself here, and
# every miner/CLI code path that needs a counter goes through
# :func:`make_counter` — one place to resolve the engine name, the
# ``workers=`` knob, and the OSSM segment composition, instead of
# per-module ad-hoc constructor branching. Engines defined in modules
# that *depend on* this one (the hash tree, the parallel counter)
# register at their own import time, which keeps this module free of
# circular imports.

#: Zero-argument factories of the serial engines, by public name.
_SERIAL_FACTORIES: dict[str, Callable[[], SupportCounter]] = {
    "subset": SubsetCounter,
    "tidset": TidsetCounter,
}

#: Factory for the sharded parallel counter, registered by
#: :mod:`repro.parallel`: ``(workers, shard_engine, segment_sizes)``.
_PARALLEL_FACTORY: (
    Callable[[int | None, str, Sequence[int] | None], SupportCounter] | None
) = None

#: Factory for a plain worker pool (chunk-parallel passes that are not
#: :class:`SupportCounter`-shaped, e.g. DHP's): ``(workers, n_tasks)``.
_POOL_FACTORY: (
    Callable[[int | None, int], ContextManager[Any] | None] | None
) = None

#: Per-engine parallel execution overrides: ``workers=`` combined with
#: one of these engine names builds the engine's *own* fan-out (the
#: bitmap engine's thread shards) instead of wrapping it in the
#: process-pool :class:`~repro.parallel.counter.ParallelCounter`.
#: Registered by :mod:`repro.parallel` via
#: ``register_parallel_backend(factory, engine=name)``; each factory is
#: ``(workers, segment_sizes) -> SupportCounter``.
_ENGINE_BACKENDS: dict[
    str, Callable[[int | None, Sequence[int] | None], SupportCounter]
] = {}

#: Name under which the parallel backend registers itself.
PARALLEL_ENGINE = "parallel"

#: Environment knob consulted by :func:`resolve_engine` when no engine
#: is named explicitly — the CI bitmap leg pins ``REPRO_ENGINE=bitmap``
#: so the whole suite mines on the vertical bit-matrix engine.
ENGINE_ENV = "REPRO_ENGINE"

#: Circuit breaker guarding the process-parallel execution backend.
#: Every :class:`~repro.parallel.counter.ParallelCounter` consults it:
#: a pool that exhausts its rebuild budget records a failure here, and
#: once it trips, *all* counter selection (this registry included)
#: degrades to the serial engines — always exact, merely slower — until
#: the recovery window admits a probe that succeeds. This replaces the
#: per-call one-shot retry the serve layer used to hand-roll.
_PARALLEL_BREAKER = CircuitBreaker(
    failure_threshold=3, recovery_time=30.0, name="engine.parallel"
)


def parallel_breaker() -> CircuitBreaker:
    """The breaker guarding the parallel backend (shared, process-wide)."""
    return _PARALLEL_BREAKER


def register_engine(
    name: str, factory: Callable[[], SupportCounter]
) -> None:
    """Register a serial engine *factory* under *name*."""
    _SERIAL_FACTORIES[name] = factory


def register_parallel_backend(
    counter_factory: Callable[..., SupportCounter],
    pool_factory: (
        Callable[[int | None, int], ContextManager[Any] | None] | None
    ) = None,
    *,
    engine: str | None = None,
) -> None:
    """Install a parallel execution backend (called by :mod:`repro.parallel`).

    Without *engine* this installs the default process-pool backend:
    *counter_factory* is ``(workers, shard_engine, segment_sizes)`` and
    *pool_factory* is ``(workers, n_tasks)``. With ``engine=<name>`` it
    registers a per-engine override instead — *counter_factory* is
    ``(workers, segment_sizes)`` and builds that engine's own fan-out
    (the bitmap engine's thread shards), bypassing the process pool and
    its transport entirely.
    """
    if engine is not None:
        _ENGINE_BACKENDS[engine] = counter_factory
        return
    global _PARALLEL_FACTORY, _POOL_FACTORY
    _PARALLEL_FACTORY = counter_factory
    _POOL_FACTORY = pool_factory


def resolve_engine(engine: str | None, workers: int | None = None) -> str:
    """Default-engine resolution: the one place the default is decided.

    An explicit *engine* name always wins; otherwise the
    ``REPRO_ENGINE`` environment variable (how the CI bitmap leg runs
    the whole suite on the vertical engine), and finally the historical
    defaults — ``"parallel"`` when *workers* were requested, the subset
    engine otherwise.
    """
    if engine is not None:
        return engine
    env = os.environ.get(ENGINE_ENV)
    if env:
        # Validate here so a typo in the environment fails with the
        # same listing error an explicit name gets from make_counter,
        # instead of surfacing later as a bare lookup failure.
        # ``parallel`` is always accepted: the variable may be read
        # before repro.parallel registers its factory.
        if env != PARALLEL_ENGINE and env not in _SERIAL_FACTORIES:
            raise ValueError(
                f"unknown counting engine {env!r} in ${ENGINE_ENV}; "
                f"expected one of {', '.join(registered_engines())}"
            )
        return env
    return PARALLEL_ENGINE if workers is not None else "subset"


def registered_engines() -> tuple[str, ...]:
    """Names :func:`make_counter` accepts, sorted."""
    names = set(_SERIAL_FACTORIES)
    if _PARALLEL_FACTORY is not None:
        names.add(PARALLEL_ENGINE)
    return tuple(sorted(names))


def make_counter(
    engine: str = "subset",
    *,
    workers: int | None = None,
    segment_sizes: Sequence[int] | None = None,
) -> SupportCounter:
    """Build a counting engine by name — the one counter-selection seam.

    ``engine`` is one of :func:`registered_engines`: a serial engine
    (``"subset"``, ``"tidset"``, ``"hashtree"``) or ``"parallel"``.
    With ``workers=`` the counting fans out over worker processes and
    a serial *engine* name selects the per-shard engine; ``"parallel"``
    alone uses the sharded counter's default shard engine.
    *segment_sizes* (an OSSM's segment composition) aligns shard
    boundaries with segments and is ignored by serial engines.
    """
    if engine == PARALLEL_ENGINE:
        if _PARALLEL_FACTORY is None:
            raise RuntimeError(
                "parallel engine requested but repro.parallel is not "
                "imported; import repro (or repro.parallel) first"
            )
        if _PARALLEL_BREAKER.is_open:
            return _degraded_serial("tidset")
        return _PARALLEL_FACTORY(workers, "tidset", segment_sizes)
    factory = _SERIAL_FACTORIES.get(engine)
    if factory is None:
        raise ValueError(
            f"unknown counting engine {engine!r}; expected one of "
            f"{', '.join(registered_engines())}"
        )
    if workers is None:
        return factory()
    override = _ENGINE_BACKENDS.get(engine)
    if override is not None:
        # Engines with their own fan-out (bitmap's thread shards) have
        # no worker processes for the pool breaker to guard; a poisoned
        # shard degrades to the engine's serial reduction internally.
        return override(workers, segment_sizes)
    if _PARALLEL_FACTORY is None:
        raise RuntimeError(
            "workers= requested but repro.parallel is not imported; "
            "import repro (or repro.parallel) first"
        )
    if _PARALLEL_BREAKER.is_open:
        return _degraded_serial(engine)
    return _PARALLEL_FACTORY(workers, engine, segment_sizes)


def _degraded_serial(engine: str) -> SupportCounter:
    """The serial engine handed out while the parallel breaker is open."""
    registry = get_registry()
    if registry.enabled:
        registry.inc("resilience.engine.degraded")
    factory = _SERIAL_FACTORIES.get(engine)
    if factory is None:
        raise ValueError(
            f"unknown counting engine {engine!r}; expected one of "
            f"{', '.join(registered_engines())}"
        )
    return factory()


def make_pool(
    workers: int | None, n_tasks: int
) -> ContextManager[Any] | None:
    """A plain worker pool for chunk-parallel passes, or ``None``.

    Returns ``None`` — run serially — when *workers* is ``None``, when
    the resolved worker count is 1, or when there are not enough tasks
    to split. Used by miners whose parallel passes are not
    :class:`SupportCounter`-shaped (DHP's hash-building count passes).
    """
    if workers is None or _POOL_FACTORY is None:
        return None
    if _PARALLEL_BREAKER.is_open:
        registry = get_registry()
        if registry.enabled:
            registry.inc("resilience.engine.degraded")
        return None
    return _POOL_FACTORY(workers, n_tasks)
