"""Eclat — vertical (tidset-intersection) frequent-set mining.

Zaki's depth-first vertical miner, the family the paper's related work
cites via diffsets/GenMax ([20]) and CHARM ([21]). Supports are
computed by intersecting sorted transaction-id arrays, so no horizontal
counting pass exists; like FP-growth it serves as an independent oracle
for the candidate-based miners and as a performance reference point.
"""

from __future__ import annotations

import time

import numpy as np

from ..data.transactions import TransactionDatabase
from .base import MiningResult, resolve_min_support

__all__ = ["Eclat", "eclat"]

Itemset = tuple[int, ...]


class Eclat:
    """Depth-first vertical miner.

    Parameters
    ----------
    max_level:
        Optional cap on reported itemset cardinality.
    """

    name = "eclat"

    def __init__(self, max_level: int | None = None) -> None:
        self.max_level = max_level

    def mine(
        self,
        database: TransactionDatabase,
        min_support: float | int,
    ) -> MiningResult:
        """Find all frequent itemsets of *database* at *min_support*."""
        threshold = resolve_min_support(database, min_support)
        result = MiningResult(
            frequent={}, min_support=threshold, algorithm=self.name
        )
        start = time.perf_counter()

        tidsets = database.vertical()
        atoms = [
            (item, tidsets[item])
            for item in range(database.n_items)
            if len(tidsets[item]) >= threshold
        ]
        for item, tids in atoms:
            result.frequent[(item,)] = len(tids)
        self._extend((), atoms, threshold, result.frequent)
        for itemset in result.frequent:
            result.level(len(itemset)).frequent += 1

        result.elapsed_seconds = time.perf_counter() - start
        return result

    def _extend(
        self,
        prefix: Itemset,
        atoms: list[tuple[int, np.ndarray]],
        threshold: int,
        out: dict[Itemset, int],
    ) -> None:
        if self.max_level is not None and len(prefix) + 2 > self.max_level:
            return  # children would exceed the cardinality cap
        for i, (item, tids) in enumerate(atoms):
            new_prefix = prefix + (item,)
            children: list[tuple[int, np.ndarray]] = []
            for other, other_tids in atoms[i + 1:]:
                joined = np.intersect1d(tids, other_tids, assume_unique=True)
                if len(joined) >= threshold:
                    children.append((other, joined))
                    out[tuple(sorted(new_prefix + (other,)))] = len(joined)
            if children:
                self._extend(new_prefix, children, threshold, out)


def eclat(
    database: TransactionDatabase,
    min_support: float | int,
    max_level: int | None = None,
) -> MiningResult:
    """Functional entry point for :class:`Eclat`."""
    return Eclat(max_level=max_level).mine(database, min_support)
