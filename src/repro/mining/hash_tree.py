"""The Apriori hash tree (Agrawal & Srikant 1994, Section 2.1.2).

Candidates of one cardinality are stored in a tree whose interior nodes
hash an item to a child and whose leaves hold small candidate lists.
Counting a transaction walks every hash path its items can open and
subset-tests only the candidates in the reached leaves — far fewer than
the full candidate list when candidates are many and transactions short.

This engine exists for fidelity to the original algorithm (and for long
transactions, where :class:`~repro.mining.counting.SubsetCounter`'s
``C(t, k)`` enumeration explodes); both engines return identical counts.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from ..data.transactions import TransactionDatabase
from .counting import SupportCounter, register_engine

__all__ = ["HashTree", "HashTreeCounter"]

Itemset = tuple[int, ...]


class _Node:
    __slots__ = ("children", "candidates", "is_leaf")

    def __init__(self) -> None:
        self.children: dict[int, _Node] = {}
        self.candidates: list[Itemset] = []
        self.is_leaf = True


class HashTree:
    """Hash tree over candidates of one cardinality ``k``.

    Parameters
    ----------
    k:
        Candidate cardinality.
    branch:
        Modulus of the per-level hash function.
    leaf_capacity:
        A leaf holding more candidates than this splits into an interior
        node — unless its depth already equals ``k`` (no item left to
        hash on).
    """

    def __init__(self, k: int, branch: int = 8, leaf_capacity: int = 16) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        if branch < 2:
            raise ValueError("branch must be >= 2")
        if leaf_capacity < 1:
            raise ValueError("leaf_capacity must be >= 1")
        self.k = k
        self.branch = branch
        self.leaf_capacity = leaf_capacity
        self._root = _Node()
        self._size = 0
        self._leaves_by_id: dict[int, _Node] = {}

    def _hash(self, item: int) -> int:
        return item % self.branch

    def insert(self, candidate: Itemset) -> None:
        """Insert one canonical *candidate* of cardinality ``k``."""
        if len(candidate) != self.k:
            raise ValueError(
                f"candidate {candidate} has size {len(candidate)}, expected {self.k}"
            )
        node = self._root
        depth = 0
        while not node.is_leaf:
            node = node.children.setdefault(
                self._hash(candidate[depth]), _Node()
            )
            depth += 1
        node.candidates.append(candidate)
        self._size += 1
        if len(node.candidates) > self.leaf_capacity and depth < self.k:
            self._split(node, depth)

    def _split(self, node: _Node, depth: int) -> None:
        node.is_leaf = False
        stored, node.candidates = node.candidates, []
        for candidate in stored:
            child = node.children.setdefault(
                self._hash(candidate[depth]), _Node()
            )
            child.candidates.append(candidate)
        # A child may itself overflow (hash collisions); split eagerly.
        for child in node.children.values():
            if len(child.candidates) > self.leaf_capacity and depth + 1 < self.k:
                self._split(child, depth + 1)

    def __len__(self) -> int:
        return self._size

    def _reachable_leaves(
        self, txn: Sequence[int]
    ) -> set[int]:
        """ids of leaves reachable by hashing paths of *txn*'s items."""
        leaves: set[int] = set()

        def descend(node: _Node, start: int, depth: int) -> None:
            if node.is_leaf:
                node_id = id(node)
                leaves.add(node_id)
                self._leaves_by_id[node_id] = node
                return
            # Consume one item for this hash level; a candidate's item
            # at position `depth` must be one of the remaining items.
            for i in range(start, len(txn) - (self.k - depth) + 1):
                child = node.children.get(self._hash(txn[i]))
                if child is not None:
                    descend(child, i + 1, depth + 1)

        descend(self._root, 0, 0)
        return leaves

    def count_transaction(
        self, txn: Sequence[int], counts: dict[Itemset, int]
    ) -> None:
        """Add *txn*'s contribution to the candidate *counts* table."""
        if len(txn) < self.k:
            return
        issuperset = frozenset(txn).issuperset  # hot loop: bind once
        for leaf_id in self._reachable_leaves(txn):
            for candidate in self._leaves_by_id[leaf_id].candidates:
                if issuperset(candidate):
                    counts[candidate] += 1


class HashTreeCounter(SupportCounter):
    """Counting engine backed by :class:`HashTree`."""

    def __init__(self, branch: int = 8, leaf_capacity: int = 16) -> None:
        self.branch = branch
        self.leaf_capacity = leaf_capacity

    def count(
        self,
        database: Iterable[Itemset] | TransactionDatabase,
        candidates: Sequence[Itemset],
    ) -> dict[Itemset, int]:
        counts: dict[Itemset, int] = {
            candidate: 0 for candidate in candidates
        }
        if not counts:
            return counts
        k = len(candidates[0])
        if any(len(candidate) != k for candidate in candidates):
            raise ValueError("candidates must share one cardinality")
        if k == 0:
            # No tree can hash on zero items; the empty itemset is
            # contained in every transaction (the SupportCounter
            # contract), so count transactions directly.
            total = (
                len(database)
                if isinstance(database, TransactionDatabase)
                else sum(1 for _ in database)
            )
            for candidate in counts:
                counts[candidate] = total
            return counts
        tree = HashTree(k, branch=self.branch, leaf_capacity=self.leaf_capacity)
        for candidate in candidates:
            tree.insert(candidate)
        for txn in database:
            tree.count_transaction(txn, counts)
        return counts


register_engine("hashtree", HashTreeCounter)
