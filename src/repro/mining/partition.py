"""The Partition algorithm (Savasere, Omiecinski & Navathe, VLDB 1995).

Two database scans:

* **Phase 1 (local).** Split the collection into ``p`` partitions and
  mine each at the scaled-down local threshold. Any globally frequent
  itemset is locally frequent in at least one partition, so the union
  of the local results is a complete global candidate set.
* **Phase 2 (global).** One counting scan of the full collection over
  the union; keep the candidates meeting the global threshold.

Section 7 of the OSSM paper describes two enhancement points, both
implemented here:

* a per-partition OSSM prunes *local* candidates inside each phase-1
  run (``local_pruner_factory``);
* the concatenation of the per-partition OSSMs is a global OSSM, whose
  bound prunes *global* candidates — locally frequent but provably
  globally infrequent — before the phase-2 scan (``global_pruner``, or
  automatically when ``auto_ossm`` is set).
"""

from __future__ import annotations

import math
import os
import time
from collections.abc import Callable

from ..core.ossm import OSSM
from ..data.transactions import TransactionDatabase
from ..obs.instrument import record_bound_gaps, record_level_stats
from ..obs.log import get_logger
from ..obs.metrics import get_registry
from ..obs.trace import trace
from .apriori import Apriori
from .base import MiningResult, resolve_min_support
from .checkpointing import MiningCheckpointer, level_crash_point
from .counting import SupportCounter, make_counter, resolve_engine
from .pruning import CandidatePruner, NullPruner, OSSMPruner

__all__ = ["Partition", "partition_mine"]

logger = get_logger(__name__)

Itemset = tuple[int, ...]

#: Signature of a factory producing the local pruner for one partition.
LocalPrunerFactory = Callable[[TransactionDatabase, int], CandidatePruner]


def _mine_partition(
    payload: tuple[TransactionDatabase, CandidatePruner, int, int | None]
) -> tuple[list[Itemset], float]:
    """Worker task: one phase-1 local mining run.

    Returns the locally frequent itemsets (the parent only needs the
    keys — phase 2 recounts globally) and the worker's wall time. The
    union of local results is a set, so completion order is irrelevant.
    """
    part, pruner, local_threshold, max_level = payload
    start = time.perf_counter()
    local = Apriori(pruner=pruner, max_level=max_level).mine(
        part, local_threshold
    )
    return list(local.frequent), time.perf_counter() - start


class Partition:
    """Two-phase partitioned miner with optional OSSM enhancement.

    Parameters
    ----------
    n_partitions:
        Number of phase-1 partitions.
    local_pruner_factory:
        Called as ``factory(partition_db, index)`` to obtain the pruner
        used inside that partition's local mining run.
    global_pruner:
        Pruner applied to the union of local results before phase 2.
    auto_ossm:
        If given (a segment count), build a per-partition OSSM with that
        many segments for each partition, use it locally, and use the
        concatenation of all of them as the global pruner. Mutually
        exclusive with the two explicit arguments.
    max_level:
        Optional cardinality cap forwarded to the local miners.
    workers:
        Fan the phase-1 local mining runs out over this many worker
        processes (one task per partition; local pruners must be
        picklable) and count phase 2 with a
        :class:`~repro.parallel.counter.ParallelCounter`. Both phases
        produce exactly the serial result: the candidate union is
        order-independent and the parallel counter is exact.
    engine:
        Phase-2 counting-engine name resolved through
        :func:`~repro.mining.counting.make_counter`; default subset
        (serial) or the sharded parallel counter (with ``workers``).
    checkpoint_dir:
        Snapshot progress there: unit 0 is the completed phase-1
        candidate union, unit ``k`` each completed phase-2 level.
        ``None`` disables checkpointing.
    resume:
        Restart from the newest valid snapshot in ``checkpoint_dir``
        (skipping phase 1 entirely once unit 0 exists); the resumed
        run is bit-identical to an uninterrupted one.
    """

    name = "partition"

    def __init__(
        self,
        n_partitions: int = 4,
        local_pruner_factory: LocalPrunerFactory | None = None,
        global_pruner: CandidatePruner | None = None,
        auto_ossm: int | None = None,
        max_level: int | None = None,
        workers: int | None = None,
        engine: str | None = None,
        checkpoint_dir: str | os.PathLike | None = None,
        resume: bool = False,
    ) -> None:
        if n_partitions < 1:
            raise ValueError("n_partitions must be >= 1")
        if auto_ossm is not None and (
            local_pruner_factory is not None or global_pruner is not None
        ):
            raise ValueError(
                "auto_ossm replaces explicit pruners; pass one or the other"
            )
        if auto_ossm is not None and auto_ossm < 1:
            raise ValueError("auto_ossm (segments per partition) must be >= 1")
        self.n_partitions = n_partitions
        self.local_pruner_factory = local_pruner_factory
        self.global_pruner = global_pruner
        self.auto_ossm = auto_ossm
        self.max_level = max_level
        self.workers = workers
        self.engine = engine
        self.checkpoint_dir = checkpoint_dir
        self.resume = resume

    def _resolved_workers(self) -> int:
        if self.workers is None:
            return 1
        # Imported lazily: repro.parallel builds on repro.mining.
        from ..parallel.plan import resolve_workers

        return resolve_workers(self.workers)

    # -- OSSM auto-construction ------------------------------------------

    def _auto_structures(
        self, partitions: list[TransactionDatabase]
    ) -> tuple[list[CandidatePruner], CandidatePruner]:
        """Per-partition OSSM pruners plus the concatenated global pruner."""
        import numpy as np

        local_pruners: list[CandidatePruner] = []
        all_rows = []
        all_sizes: list[int] = []
        n_items = max(p.n_items for p in partitions)
        for part in partitions:
            n_segments = min(self.auto_ossm, max(len(part), 1))
            if len(part) == 0:
                rows = np.zeros((1, n_items), dtype=np.int64)
                sizes = [0]
            else:
                bounds = np.linspace(0, len(part), n_segments + 1).astype(int)
                rows = np.zeros((n_segments, n_items), dtype=np.int64)
                sizes = []
                for s, (lo, hi) in enumerate(zip(bounds, bounds[1:])):
                    segment = part[int(lo):int(hi)]
                    supports = segment.item_supports()
                    rows[s, : len(supports)] = supports
                    sizes.append(len(segment))
            ossm = OSSM(rows, segment_sizes=sizes)
            local_pruners.append(OSSMPruner(ossm))
            all_rows.append(rows)
            all_sizes.extend(sizes)
        global_ossm = OSSM(np.vstack(all_rows), segment_sizes=all_sizes)
        return local_pruners, OSSMPruner(global_ossm)

    # -- driver ------------------------------------------------------------

    def mine(
        self,
        database: TransactionDatabase,
        min_support: float | int,
    ) -> MiningResult:
        """Find all frequent itemsets of *database* at *min_support*."""
        threshold = resolve_min_support(database, min_support)
        relative = threshold / max(len(database), 1)
        partitions = database.split(min(self.n_partitions, max(len(database), 1)))

        if self.auto_ossm is not None:
            local_pruners, global_pruner = self._auto_structures(partitions)
        else:
            factory = self.local_pruner_factory
            local_pruners = [
                factory(part, i) if factory else NullPruner()
                for i, part in enumerate(partitions)
            ]
            global_pruner = self.global_pruner or NullPruner()

        label = global_pruner.label or (
            local_pruners[0].label if local_pruners else ""
        )
        result = MiningResult(
            frequent={},
            min_support=threshold,
            algorithm=self.name + label,
        )
        workers = self._resolved_workers()
        start = time.perf_counter()
        metrics = get_registry()
        ckpt = MiningCheckpointer.open(
            self.checkpoint_dir, self.resume, result.algorithm, threshold,
            database, n_partitions=self.n_partitions,
            auto_ossm=self.auto_ossm, max_level=self.max_level,
        )
        restored = ckpt.restored() if ckpt is not None else None

        with trace(
            "partition.mine",
            algorithm=result.algorithm,
            min_support=threshold,
            n_partitions=len(partitions),
        ):
            # Phase 1: local mining (skipped once checkpoint unit 0 —
            # the complete candidate union — is on disk).
            candidates: set[Itemset] = set()
            done_levels: set[int] = set()
            if restored is not None:
                unit, state = restored
                candidates = set(state["candidates"])
                if unit > 0:
                    result.frequent = dict(state["frequent"])
                    MiningCheckpointer.unpack_levels(result, state["levels"])
                    done_levels = set(state["done"])
            else:
                with trace("partition.phase1", workers=workers):
                    level_crash_point()
                    tasks = []
                    for index, (part, pruner) in enumerate(
                        zip(partitions, local_pruners)
                    ):
                        if len(part) == 0:
                            continue
                        local_threshold = max(
                            1, math.ceil(relative * len(part))
                        )
                        tasks.append((index, part, pruner, local_threshold))
                    if workers > 1 and len(tasks) > 1:
                        self._phase_one_parallel(tasks, candidates, workers)
                    else:
                        for index, part, pruner, local_threshold in tasks:
                            with trace(
                                "partition.local", partition=index,
                                size=len(part),
                            ):
                                local = Apriori(
                                    pruner=pruner, max_level=self.max_level
                                ).mine(part, local_threshold)
                            candidates.update(local.frequent)
                metrics.inc("partition.global_candidates", len(candidates))
                logger.debug(
                    "phase 1: %d global candidates from %d partitions",
                    len(candidates), len(partitions),
                )
                if ckpt is not None:
                    ckpt.save_level(0, {"candidates": sorted(candidates)})

            # Phase 2: one global counting scan, level by level.
            counter = self._phase_two_counter(workers, global_pruner)
            by_size: dict[int, list[Itemset]] = {}
            for candidate in candidates:
                by_size.setdefault(len(candidate), []).append(candidate)
            with trace("partition.phase2"):
                for k in sorted(by_size):
                    if k in done_levels:
                        continue
                    with trace("partition.level", level=k):
                        level_crash_point()
                        level = result.level(k)
                        level_candidates = sorted(by_size[k])
                        level.candidates_generated = len(level_candidates)
                        survivors = global_pruner.prune(
                            level_candidates, threshold
                        )
                        level.candidates_pruned = (
                            len(level_candidates) - len(survivors)
                        )
                        level.candidates_counted = len(survivors)
                        with metrics.time("partition.count_seconds"):
                            counts = counter.count(database, survivors)
                        record_bound_gaps(global_pruner, survivors, counts)
                        for itemset, support in counts.items():
                            if support >= threshold:
                                result.frequent[itemset] = support
                                level.frequent += 1
                        record_level_stats(self.name, level)
                    done_levels.add(k)
                    if ckpt is not None:
                        ckpt.save_level(
                            k,
                            {
                                "candidates": sorted(candidates),
                                "frequent": dict(result.frequent),
                                "levels": MiningCheckpointer.pack_levels(
                                    result
                                ),
                                "done": sorted(done_levels),
                            },
                        )

        closer = getattr(counter, "close", None)
        if closer is not None:
            closer()
        result.elapsed_seconds = time.perf_counter() - start
        return result

    # -- parallel plumbing -------------------------------------------------

    def _phase_one_parallel(
        self,
        tasks: list[tuple[int, TransactionDatabase, CandidatePruner, int]],
        candidates: set[Itemset],
        workers: int,
    ) -> None:
        """Fan the local mining runs out, one task per partition."""
        # Imported lazily: repro.parallel builds on repro.mining.
        from ..parallel.pool import plain_pool, record_fanout

        payloads = [
            (part, pruner, local_threshold, self.max_level)
            for _index, part, pruner, local_threshold in tasks
        ]
        start = time.perf_counter()
        with plain_pool(min(workers, len(payloads))) as pool:
            results = pool.run(_mine_partition, payloads)
        wall = time.perf_counter() - start
        timings = []
        for (index, part, _pruner, _thr), (frequent, seconds) in zip(
            tasks, results
        ):
            candidates.update(frequent)
            timings.append((index, len(part), seconds))
        record_fanout("parallel.partition_local", timings, wall)

    def _phase_two_counter(
        self, workers: int, global_pruner: CandidatePruner
    ) -> SupportCounter:
        """Serial subset counter, or the sharded parallel counter —
        both resolved through the engine registry."""
        ossm = getattr(global_pruner, "ossm", None)
        sizes = ossm.segment_sizes if ossm is not None else None
        engine = resolve_engine(
            self.engine, workers if workers > 1 else None
        )
        return make_counter(
            engine,
            workers=workers if workers > 1 else None,
            segment_sizes=sizes,
        )


def partition_mine(
    database: TransactionDatabase,
    min_support: float | int,
    n_partitions: int = 4,
    **kwargs,
) -> MiningResult:
    """Functional entry point for :class:`Partition`."""
    miner = Partition(n_partitions=n_partitions, **kwargs)
    return miner.mine(database, min_support)
