"""Association-rule generation from frequent itemsets.

The classical second stage of association mining ([2] in the paper):
from every frequent itemset ``Z`` and non-empty proper subset ``X``,
emit ``X → Z∖X`` when its confidence ``sup(Z)/sup(X)`` reaches the
threshold. Uses the standard monotonicity shortcut (if a consequent
fails, none of its supersets can succeed for the same ``Z``).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable

from .base import MiningResult

__all__ = ["Rule", "generate_rules"]

Itemset = tuple[int, ...]


@dataclass(frozen=True)
class Rule:
    """One association rule ``antecedent → consequent``.

    Support is relative (fraction of transactions containing the whole
    itemset); lift compares the rule's confidence against the
    consequent's baseline frequency (>1 means positive correlation).
    """

    antecedent: Itemset
    consequent: Itemset
    support: float
    confidence: float
    lift: float

    def __str__(self) -> str:
        lhs = ",".join(map(str, self.antecedent))
        rhs = ",".join(map(str, self.consequent))
        return (
            f"{{{lhs}}} -> {{{rhs}}} "
            f"(sup={self.support:.4f}, conf={self.confidence:.3f}, "
            f"lift={self.lift:.2f})"
        )


def _subtract(itemset: Itemset, subset: Itemset) -> Itemset:
    removed = set(subset)
    return tuple(item for item in itemset if item not in removed)


def generate_rules(
    result: MiningResult,
    n_transactions: int,
    min_confidence: float = 0.5,
) -> list[Rule]:
    """All confident rules derivable from *result*'s frequent itemsets.

    Parameters
    ----------
    result:
        A mining result whose ``frequent`` map is *downward closed*
        (every miner in this package produces such maps).
    n_transactions:
        Collection size, to scale supports and lifts.
    min_confidence:
        Confidence threshold in ``(0, 1]``.
    """
    if not 0.0 < min_confidence <= 1.0:
        raise ValueError("min_confidence must lie in (0, 1]")
    if n_transactions < 1:
        raise ValueError("n_transactions must be >= 1")
    frequent = result.frequent
    rules: list[Rule] = []
    for itemset, support in frequent.items():
        if len(itemset) < 2:
            continue
        # Grow consequents level-wise; prune by confidence monotonicity.
        consequents: Iterable[Itemset] = [
            (item,) for item in itemset
        ]
        while consequents:
            surviving: list[Itemset] = []
            for consequent in consequents:
                antecedent = _subtract(itemset, consequent)
                if not antecedent:
                    continue
                antecedent_support = frequent.get(antecedent)
                if antecedent_support is None:
                    raise ValueError(
                        "frequent map is not downward closed: "
                        f"missing {antecedent}"
                    )
                confidence = support / antecedent_support
                if confidence >= min_confidence:
                    consequent_support = frequent[consequent]
                    rules.append(
                        Rule(
                            antecedent=antecedent,
                            consequent=consequent,
                            support=support / n_transactions,
                            confidence=confidence,
                            lift=(
                                confidence
                                / (consequent_support / n_transactions)
                            ),
                        )
                    )
                    surviving.append(consequent)
            # Join surviving consequents into the next size up.
            surviving.sort()
            consequents = [
                a + (b[-1],)
                for i, a in enumerate(surviving)
                for b in surviving[i + 1:]
                if a[:-1] == b[:-1] and len(a) + 1 < len(itemset)
            ]
    rules.sort(key=lambda r: (-r.confidence, -r.support, r.antecedent))
    return rules
