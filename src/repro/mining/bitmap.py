"""Vertical bit-matrix support counting.

The transactions×items incidence matrix, packed bitwise: for every item
the counter stores a transaction bit-vector packed into ``uint64``
words, so the support of a candidate itemset is a bitwise AND reduction
over its item rows followed by a popcount — two vectorized numpy
kernels that release the GIL. This is the Eclat/tidset vertical layout
pushed all the way down to bits (see PAPERS.md: "Mining Frequent
Itemsets from Secondary Memory" uses the same packing out of core), and
it is what makes *thread* sharding profitable where the process pool is
not: shards are word-column ranges of one shared read-only matrix, so
fanning out moves no data at all — no pickle, no fork, no
shared-memory transport (that transport is legacy for this engine; see
:mod:`repro.parallel.threads` for the thread path).

Exactness is structural:

* the packed matrix is a bijective encoding of the incidence matrix —
  bit ``t`` of item row ``x`` is set iff transaction ``t`` contains
  ``x``;
* AND of the rows of an itemset sets exactly the bits of transactions
  containing *every* item (intersection of tidsets);
* popcount of that vector is the cardinality of the intersection — the
  support, with no arithmetic that could round or overflow (popcounts
  are summed in int64).

The packing is *segment-aligned*: when the counter knows the OSSM
segment composition, it materializes one packed mask per segment, so
per-segment supports — the OSSM matrix itself, and with it every
Equation (1) upper bound — fall out of the same AND+popcount pass
(:meth:`BitmapCounter.count_segments`, :meth:`BitmapCounter.to_ossm`).

``tests/mining/test_bitmap.py`` holds the differential battery proving
the counts bit-identical to every other engine; DESIGN.md §14 spells
out the word-level exactness argument.
"""

from __future__ import annotations

import threading
from collections.abc import Iterable, Sequence

import numpy as np

from ..core.ossm import OSSM
from ..data.transactions import TransactionDatabase
from ..obs.metrics import get_registry
from ..obs.trace import trace
from .counting import SupportCounter, register_engine

__all__ = [
    "BitmapCounter",
    "PackedBitmap",
    "WORD_BITS",
    "pack_database",
    "popcount_reduce",
]

Itemset = tuple[int, ...]

#: Bits per packed word. Shard boundaries in the thread path are word
#: boundaries, so any partition of the word columns partitions the
#: transactions — the per-shard popcount reduce is exact by additivity.
WORD_BITS = 64

#: Candidate rows gathered per vectorized AND+popcount block. Bounds the
#: transient gather at ``block × n_words × 8`` bytes while keeping the
#: per-block python overhead negligible.
_CANDIDATE_BLOCK = 256


def _range_mask(n_words: int, lo: int, hi: int) -> np.ndarray:
    """Packed word mask selecting the transactions in ``[lo, hi)``.

    Built through the same ``np.packbits`` pipeline as the item rows,
    so bit positions line up by construction regardless of platform
    byte order.
    """
    bits = np.zeros(n_words * WORD_BITS, dtype=np.uint8)
    bits[lo:hi] = 1
    return np.packbits(bits).view(np.uint64)


class PackedBitmap:
    """One database, packed: ``n_items × n_words`` uint64 bit rows.

    Immutable once built (the word matrix is marked read-only), which is
    what makes a single instance safely shareable across counting
    threads: every downstream kernel only reads.

    Parameters
    ----------
    words:
        The packed item rows; bit ``t`` of row ``x`` set iff transaction
        ``t`` contains item ``x``.
    n_transactions:
        Number of real transactions (the tail bits of the last word are
        zero padding).
    segment_bounds:
        Segment cut points ``[0, b1, ..., N]`` when the OSSM composition
        is known; ``(0, N)`` — one segment — otherwise.
    """

    def __init__(
        self,
        words: np.ndarray,
        n_transactions: int,
        segment_bounds: tuple[int, ...],
    ) -> None:
        self.words = words
        self.words.setflags(write=False)
        self.n_transactions = int(n_transactions)
        self.n_items = int(words.shape[0])
        self.n_words = int(words.shape[1])
        self.segment_bounds = segment_bounds
        self._segment_masks: np.ndarray | None = None
        self._segment_matrix: np.ndarray | None = None

    @property
    def n_segments(self) -> int:
        return len(self.segment_bounds) - 1

    @property
    def segment_sizes(self) -> tuple[int, ...]:
        return tuple(
            hi - lo
            for lo, hi in zip(self.segment_bounds, self.segment_bounds[1:])
        )

    def segment_masks(self) -> np.ndarray:
        """``n_segments × n_words`` packed masks, one per segment (lazy)."""
        if self._segment_masks is None:
            masks = np.zeros((self.n_segments, self.n_words), dtype=np.uint64)
            for index, (lo, hi) in enumerate(
                zip(self.segment_bounds, self.segment_bounds[1:])
            ):
                masks[index] = _range_mask(self.n_words, lo, hi)
            masks.setflags(write=False)
            self._segment_masks = masks
        return self._segment_masks

    def segment_matrix(self) -> np.ndarray:
        """Per-segment singleton supports — the OSSM matrix, one pass.

        Row ``s``, column ``x`` is the popcount of item row ``x`` under
        segment ``s``'s mask: exactly ``sup_s({x})``.
        """
        if self._segment_matrix is None:
            matrix = np.zeros(
                (self.n_segments, self.n_items), dtype=np.int64
            )
            masks = self.segment_masks()
            for index in range(self.n_segments):
                matrix[index] = np.bitwise_count(
                    self.words & masks[index]
                ).sum(axis=1, dtype=np.int64)
            matrix.setflags(write=False)
            self._segment_matrix = matrix
        return self._segment_matrix


def pack_database(
    database: TransactionDatabase,
    segment_sizes: Sequence[int] | None = None,
) -> PackedBitmap:
    """Pack *database* into its vertical bit matrix.

    *segment_sizes* (an OSSM segment composition) aligns the packing's
    segment masks; sizes inconsistent with the database — a map built
    from a different collection — are ignored rather than trusted,
    exactly like :meth:`repro.parallel.plan.ShardPlanner.plan`.
    """
    n = len(database)
    n_words = (n + WORD_BITS - 1) // WORD_BITS
    words = np.zeros((database.n_items, n_words), dtype=np.uint64)
    if n and database.n_items:
        padded = n_words * WORD_BITS
        bits = np.zeros(padded, dtype=np.uint8)
        for item, tids in enumerate(database.vertical()):
            if len(tids) == 0:
                continue
            bits[tids] = 1
            words[item] = np.packbits(bits).view(np.uint64)
            bits[tids] = 0
    bounds: tuple[int, ...] = (0, n)
    if segment_sizes is not None and sum(segment_sizes) == n:
        cuts = [0]
        for size in segment_sizes:
            cuts.append(cuts[-1] + int(size))
        bounds = tuple(cuts)
    return PackedBitmap(words, n, bounds)


class BitmapCounter(SupportCounter):
    """Exact support counting over the packed vertical bit matrix.

    Parameters
    ----------
    segment_sizes:
        OSSM segment composition of the databases this counter will
        see. When given (and consistent), per-segment supports and
        Equation (1) bounds (:meth:`count_segments`, :meth:`to_ossm`,
        :meth:`upper_bounds`) come from the same packed matrix; when
        absent, those methods see a single segment. Counts are exact
        either way.

    The packing is paid once per database object and cached (the
    Apriori level loop counts the same database every level), guarded
    by a lock so concurrent :meth:`count` calls from many threads pack
    once and then share the read-only matrix. The cache pins a strong
    reference to the bound database, so a recycled ``id`` can never
    alias a stale packing.
    """

    def __init__(self, segment_sizes: Sequence[int] | None = None) -> None:
        self.segment_sizes = (
            tuple(int(size) for size in segment_sizes)
            if segment_sizes is not None
            else None
        )
        self._lock = threading.Lock()
        self._database: TransactionDatabase | None = None
        self._packed: PackedBitmap | None = None

    # -- packing ---------------------------------------------------------

    def _pack(self, database: TransactionDatabase) -> PackedBitmap:
        packed = self._packed
        if packed is not None and database is self._database:
            return packed
        with self._lock:
            packed = self._packed
            if packed is not None and database is self._database:
                return packed
            registry = get_registry()
            with registry.time("bitmap.pack_seconds"):
                with trace(
                    "bitmap.pack",
                    transactions=len(database),
                    items=database.n_items,
                ):
                    packed = pack_database(database, self.segment_sizes)
            if registry.enabled:
                registry.inc("bitmap.packs")
            self._packed = packed
            self._database = database
            return packed

    # -- counting --------------------------------------------------------

    def count(
        self,
        database: Iterable[Itemset] | TransactionDatabase,
        candidates: Sequence[Itemset],
    ) -> dict[Itemset, int]:
        with get_registry().time("counting.bitmap_seconds"):
            return self._count(database, candidates)

    def _count(
        self,
        database: Iterable[Itemset] | TransactionDatabase,
        candidates: Sequence[Itemset],
    ) -> dict[Itemset, int]:
        counts: dict[Itemset, int] = {
            candidate: 0 for candidate in candidates
        }
        if not counts:
            return counts
        k = len(candidates[0])
        if any(len(candidate) != k for candidate in candidates):
            raise ValueError("candidates must share one cardinality")
        if not isinstance(database, TransactionDatabase):
            database = TransactionDatabase(database)
        n_transactions = len(database)
        if k == 0:
            # The empty itemset is contained in every transaction.
            for candidate in counts:
                counts[candidate] = n_transactions
            return counts
        if n_transactions == 0:
            return counts
        packed = self._pack(database)
        ordered = list(counts)
        n_items = packed.n_items
        in_domain = [
            candidate
            for candidate in ordered
            if all(0 <= item < n_items for item in candidate)
        ]
        # Out-of-domain items occur in no transaction: those candidates
        # keep their initialized 0 without touching the matrix.
        if not in_domain:
            return counts
        table = np.asarray(in_domain, dtype=np.int64)
        with trace(
            "bitmap.count",
            candidates=len(in_domain),
            k=k,
            words=packed.n_words,
        ):
            supports = self._candidate_counts(packed, table)
        for candidate, support in zip(in_domain, supports):
            counts[candidate] = int(support)
        return counts

    def _candidate_counts(
        self, packed: PackedBitmap, table: np.ndarray
    ) -> np.ndarray:
        """int64 support vector for an in-domain candidate table.

        The seam the thread path overrides
        (:class:`repro.parallel.threads.ThreadedBitmapCounter`): this
        serial body runs the reduction over the full word range.
        """
        return popcount_reduce(packed.words, table, 0, packed.n_words)

    # -- segment views ---------------------------------------------------

    def count_segments(
        self,
        database: Iterable[Itemset] | TransactionDatabase,
        candidates: Sequence[Itemset],
    ) -> np.ndarray:
        """Per-segment supports: ``n_segments × n_candidates`` int64.

        Column sums equal :meth:`count` exactly (the segment masks
        partition the transaction bits). All candidates must be
        in-domain and share one cardinality ``k >= 1``.
        """
        if not isinstance(database, TransactionDatabase):
            database = TransactionDatabase(database)
        packed = self._pack(database)
        if not candidates:
            return np.zeros((packed.n_segments, 0), dtype=np.int64)
        table = np.asarray(candidates, dtype=np.int64)
        if table.ndim != 2 or table.shape[1] == 0:
            raise ValueError("candidates must share one cardinality k >= 1")
        if table.min() < 0 or table.max() >= packed.n_items:
            raise ValueError("count_segments requires in-domain candidates")
        masks = packed.segment_masks()
        out = np.zeros((packed.n_segments, len(table)), dtype=np.int64)
        bitwise_and = np.bitwise_and
        bitwise_count = np.bitwise_count
        for lo in range(0, len(table), _CANDIDATE_BLOCK):
            block = table[lo:lo + _CANDIDATE_BLOCK]
            acc = packed.words[block[:, 0]].copy()
            for j in range(1, block.shape[1]):
                bitwise_and(acc, packed.words[block[:, j]], out=acc)
            for segment in range(packed.n_segments):
                out[segment, lo:lo + len(block)] = bitwise_count(
                    acc & masks[segment]
                ).sum(axis=1, dtype=np.int64)
        return out

    def to_ossm(self, database: Iterable[Itemset] | TransactionDatabase):
        """The OSSM of the packing's segment composition — same pass.

        Identical to ``build_from_database(db, bounds)`` row for row:
        each cell is the popcount of one item row under one segment
        mask, which *is* the per-segment singleton support.
        """
        if not isinstance(database, TransactionDatabase):
            database = TransactionDatabase(database)
        packed = self._pack(database)
        return OSSM(
            packed.segment_matrix(), segment_sizes=packed.segment_sizes
        )

    def upper_bounds(
        self,
        database: Iterable[Itemset] | TransactionDatabase,
        itemsets: Sequence[Sequence[int]],
    ) -> np.ndarray:
        """Equation (1) bounds from the packed matrix's segment view.

        Delegates the bound arithmetic to
        :meth:`repro.core.ossm.OSSM.upper_bounds`, so the values are
        byte-identical to the serial map's (including the documented
        exact pair fast path) and therefore exactly as sound.
        """
        return self.to_ossm(database).upper_bounds(itemsets)


def popcount_reduce(
    words: np.ndarray, table: np.ndarray, w_lo: int, w_hi: int
) -> np.ndarray:
    """AND-reduce + popcount of candidate rows over words ``[w_lo, w_hi)``.

    The workhorse kernel, shared by the serial path (full word range)
    and the thread shards (one word-column range each; word columns
    partition the transactions, so per-shard vectors sum to the exact
    global counts in int64). Runs in blocks of ``_CANDIDATE_BLOCK``
    candidate rows: the gather, the ANDs and the popcount are numpy
    kernels that release the GIL, which is why threads scale here.
    """
    totals = np.zeros(len(table), dtype=np.int64)
    if w_hi <= w_lo:
        return totals
    k = table.shape[1]
    bitwise_and = np.bitwise_and
    bitwise_count = np.bitwise_count
    for lo in range(0, len(table), _CANDIDATE_BLOCK):
        block = table[lo:lo + _CANDIDATE_BLOCK]
        acc = words[block[:, 0], w_lo:w_hi].copy()
        for j in range(1, k):
            bitwise_and(acc, words[block[:, j], w_lo:w_hi], out=acc)
        totals[lo:lo + len(block)] = bitwise_count(acc).sum(
            axis=1, dtype=np.int64
        )
    return totals


register_engine("bitmap", BitmapCounter)
