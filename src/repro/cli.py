"""Command-line interface: ``python -m repro`` / ``repro-ossm``.

Subcommands cover the full pipeline:

* ``generate`` — synthesize a workload (quest / skewed / alarms) to a
  file;
* ``ossm`` — segment a transaction file and save the resulting OSSM;
* ``mine`` — run a miner (optionally OSSM-accelerated) over a file;
* ``serve`` — answer Equation (1) bound queries from a saved OSSM
  through the online :class:`~repro.serve.service.BoundQueryService`
  (epoch-tagged cache, coalescing, back-pressure);
* ``recipe`` — print the Figure 7 strategy recommendation;
* ``bench-history`` — read the accumulated ``BENCH_*.json`` records
  and flag per-metric regressions beyond a noise band.

Every subcommand accepts the observability flags ``--log-level``,
``--log-json``, ``--trace-out PATH``, and ``--metrics-out PATH``:
logging is opt-in (the library is silent otherwise), and the trace/
metrics files are JSON exports of the run's span tree and metric
snapshot (per-level spans, prune/keep counters, the Equation (1)
bound-tightness histogram, counting timers).
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import signal
import sys
from collections.abc import Sequence

from .analysis.cli import add_lint_arguments, run_lint
from .bench.history import load_bench_records, render_history, trajectories
from .core.bubble import bubble_list_for
from .core.greedy import GreedySegmenter
from .core.hybrid import RandomGreedySegmenter, RandomRCSegmenter
from .core.ossm import OSSM
from .core.random_seg import RandomSegmenter
from .core.rc import RCSegmenter
from .core.recipe import RecipeInputs, recommend
from .data import io as data_io
from .data.alarms import generate_alarms
from .data.pages import PagedDatabase
from .data.quest import generate_quest
from .data.skewed import generate_skewed
from .mining.apriori import Apriori
from .mining.depth_project import DepthProject
from .mining.dhp import DHP
from .mining.eclat import Eclat
from .mining.fpgrowth import FPGrowth
from .mining.partition import Partition
from .mining.pruning import NullPruner, OSSMPruner
from .obs.instrument import record_ossm_build
from .obs.export import OpsServer
from .obs.log import configure_logging, get_logger
from .obs.metrics import MetricsRegistry, get_registry, use_registry
from .obs.trace import TraceRecorder, use_recorder
from .resilience import ResilienceError
from .resilience.faults import get_injector
from .serve.durability import TenantStore
from .serve.gateway import Gateway
from .serve.service import BoundQueryService
from .serve.tenants import TenantQuota, TenantRegistry

__all__ = ["main"]

logger = get_logger(__name__)

_SEGMENTERS = ("greedy", "rc", "random", "random-rc", "random-greedy")
_MINERS = (
    "apriori", "dhp", "fpgrowth", "eclat", "partition", "depthproject",
    "charm",
)


def _observability_parent() -> argparse.ArgumentParser:
    """Observability flags shared by every subcommand."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("observability")
    group.add_argument(
        "--log-level", default=None,
        choices=("DEBUG", "INFO", "WARNING", "ERROR"),
        help="enable library logging at this level (silent by default)",
    )
    group.add_argument(
        "--log-json", action="store_true",
        help="emit log records as JSON lines instead of text",
    )
    group.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write the run's span tree as JSON to PATH",
    )
    group.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the run's metric snapshot as JSON to PATH",
    )
    return parent


def _build_parser() -> argparse.ArgumentParser:
    obs = _observability_parent()
    parser = argparse.ArgumentParser(
        prog="repro-ossm",
        description="OSSM (ICDE 2002) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser(
        "generate", help="synthesize a workload file", parents=[obs]
    )
    gen.add_argument("--kind", choices=("quest", "skewed", "alarms"),
                     default="quest")
    gen.add_argument("--out", required=True, help=".dat/.txt or .npz path")
    gen.add_argument("--transactions", type=int, default=10_000)
    gen.add_argument("--items", type=int, default=1000)
    gen.add_argument("--avg-length", type=float, default=10.0)
    gen.add_argument("--patterns", type=int, default=2000,
                     help="quest: potentially-frequent itemset pool size")
    gen.add_argument("--skew", type=float, default=0.8,
                     help="skewed: seasonal bias in [0,1]")
    gen.add_argument("--seed", type=int, default=0)

    ossm = sub.add_parser(
        "ossm", help="segment a workload into an OSSM", parents=[obs]
    )
    ossm.add_argument("--data", required=True)
    ossm.add_argument("--out", required=True, help="OSSM .npz path")
    ossm.add_argument("--algorithm", choices=_SEGMENTERS, default="greedy")
    ossm.add_argument("--segments", type=int, default=40,
                      help="n_user: number of segments to produce")
    ossm.add_argument("--page-size", type=int, default=100)
    ossm.add_argument("--n-mid", type=int, default=200,
                      help="hybrids: intermediate segment count")
    ossm.add_argument("--bubble-size", type=int, default=0,
                      help="bubble-list length (0 = no bubble list)")
    ossm.add_argument("--bubble-minsup", type=float, default=0.0025)
    ossm.add_argument("--seed", type=int, default=0)

    mine = sub.add_parser(
        "mine", help="mine frequent itemsets", parents=[obs]
    )
    mine.add_argument("--data", required=True)
    mine.add_argument("--minsup", type=float, default=0.01,
                      help="relative support threshold in (0,1]")
    mine.add_argument("--algorithm", choices=_MINERS, default="apriori")
    mine.add_argument("--ossm", help="OSSM .npz to prune with")
    mine.add_argument("--max-level", type=int, default=0,
                      help="cardinality cap (0 = unbounded)")
    mine.add_argument("--workers", type=int, default=0,
                      help="workers for counting (0 = serial; processes, "
                           "or threads for --engine bitmap; "
                           "apriori/dhp/partition only)")
    mine.add_argument("--engine", default=None,
                      choices=("subset", "tidset", "hashtree", "parallel",
                               "bitmap"),
                      help="counting engine (registry name; "
                           "apriori/partition only)")
    mine.add_argument("--top", type=int, default=20,
                      help="itemsets to print (0 = all)")
    mine.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                      help="snapshot loop state there after every level "
                           "(apriori/dhp/partition only)")
    mine.add_argument("--resume", action="store_true",
                      help="resume from the newest valid checkpoint in "
                           "--checkpoint-dir")

    serve = sub.add_parser(
        "serve",
        help="answer Equation (1) bound queries from a saved OSSM",
        parents=[obs],
    )
    serve.add_argument("--ossm", required=True, help="OSSM .npz path")
    serve.add_argument(
        "--queries", default="-", metavar="PATH",
        help="itemset-per-line query file ('-' = stdin; items "
             "comma/space separated)",
    )
    serve.add_argument("--batch", type=int, default=64,
                       help="itemsets per service batch")
    serve.add_argument("--cache-size", type=int, default=4096)
    serve.add_argument("--max-pending", type=int, default=1024)
    serve.add_argument("--timeout", type=float, default=None,
                       help="per-batch timeout in seconds")
    serve.add_argument("--workers", type=int, default=0,
                       help="worker processes for batch evaluation "
                            "(0 = serial)")
    serve.add_argument("--quiet", action="store_true",
                       help="print only the summary line")
    serve.add_argument("--slo-target", type=float, default=None,
                       metavar="SECONDS",
                       help="per-batch latency SLO target; batches over "
                            "it count against the error budget")
    serve.add_argument("--ops-port", type=int, default=None,
                       metavar="PORT",
                       help="expose /metrics, /health, /stats on "
                            "127.0.0.1:PORT while serving (0 = any "
                            "free port)")
    serve.add_argument("--listen", default=None, metavar="[HOST:]PORT",
                       help="run the multi-tenant HTTP gateway instead "
                            "of a one-shot query pass (':0' = any free "
                            "port on 127.0.0.1); the --ossm map becomes "
                            "the --tenant tenant")
    serve.add_argument("--tenant", default="default", metavar="NAME",
                       help="tenant name the --ossm map is served under "
                            "in --listen mode")
    serve.add_argument("--rate", type=float, default=None,
                       metavar="QPS",
                       help="--listen mode: per-tenant sustained "
                            "queries/second quota (default unlimited)")
    serve.add_argument("--burst", type=float, default=None,
                       metavar="N",
                       help="--listen mode: per-tenant burst reservoir "
                            "(default one second at --rate)")
    serve.add_argument("--state-dir", default=None, metavar="DIR",
                       help="--listen mode: durable control-plane root "
                            "(write-ahead log + artifact directory); "
                            "tenants recover from it at boot and SIGHUP "
                            "re-reads its quotas.json overrides")
    serve.add_argument("--drain-timeout", type=float, default=10.0,
                       metavar="SECONDS",
                       help="--listen mode: max seconds to drain "
                            "in-flight work after SIGTERM/SIGINT before "
                            "exiting anyway")

    recipe = sub.add_parser(
        "recipe", help="Figure 7 recommendation", parents=[obs]
    )
    recipe.add_argument("--n-user", type=int, required=True)
    recipe.add_argument("--pages", type=int, required=True)
    recipe.add_argument("--skewed", action="store_true")
    recipe.add_argument("--cost-matters", action="store_true")

    lint = sub.add_parser(
        "lint",
        help="run the project-specific static-analysis pass",
        parents=[obs],
    )
    add_lint_arguments(lint)

    history = sub.add_parser(
        "bench-history",
        help="trajectories and regression flags from BENCH_*.json",
        parents=[obs],
    )
    history.add_argument("--dir", default=".", metavar="DIR",
                         help="directory holding BENCH_*.json files")
    history.add_argument("--window", type=int, default=5,
                         help="baseline window: median of this many "
                              "preceding records")
    history.add_argument("--min-records", type=int, default=3,
                         help="series shorter than this are reported "
                              "as 'new', never flagged")
    history.add_argument("--tolerance", type=float, default=0.25,
                         help="relative noise band; moves beyond it "
                              "in the worsening direction are flagged")
    history.add_argument("--check", action="store_true",
                         help="exit 1 when any regression is flagged "
                              "(default: report only)")

    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.kind == "quest":
        db = generate_quest(
            n_transactions=args.transactions,
            n_items=args.items,
            avg_transaction_len=args.avg_length,
            n_patterns=args.patterns,
            seed=args.seed,
        )
    elif args.kind == "skewed":
        db = generate_skewed(
            n_transactions=args.transactions,
            n_items=args.items,
            avg_transaction_len=args.avg_length,
            skew=args.skew,
            seed=args.seed,
        )
    else:
        db = generate_alarms(
            n_windows=args.transactions,
            n_alarm_types=args.items,
            seed=args.seed,
        )
    data_io.save(db, args.out)
    print(f"wrote {len(db)} transactions over {db.n_items} items to {args.out}")
    return 0


def _make_segmenter(args: argparse.Namespace, items) -> object:
    if args.algorithm == "greedy":
        return GreedySegmenter(items=items)
    if args.algorithm == "rc":
        return RCSegmenter(seed=args.seed, items=items)
    if args.algorithm == "random":
        return RandomSegmenter(seed=args.seed, items=items)
    if args.algorithm == "random-rc":
        return RandomRCSegmenter(n_mid=args.n_mid, seed=args.seed, items=items)
    return RandomGreedySegmenter(n_mid=args.n_mid, seed=args.seed, items=items)


def _cmd_ossm(args: argparse.Namespace) -> int:
    db = data_io.load(args.data)
    paged = PagedDatabase(db, page_size=args.page_size)
    items = None
    if args.bubble_size:
        items = bubble_list_for(db, args.bubble_minsup, args.bubble_size)
    segmenter = _make_segmenter(args, items)
    result = segmenter.segment(paged, args.segments)
    result.ossm.save(args.out)
    print(
        f"{result.algorithm}: {paged.n_pages} pages -> "
        f"{result.n_segments} segments in {result.elapsed_seconds:.2f}s "
        f"({result.loss_evaluations} loss evaluations); "
        f"nominal size {result.ossm.nominal_size_bytes() / 1e6:.3f} MB; "
        f"saved to {args.out}"
    )
    return 0


def _cmd_mine(args: argparse.Namespace) -> int:
    db = data_io.load(args.data)
    max_level = args.max_level or None
    workers = args.workers or None
    if workers is not None and args.algorithm not in (
        "apriori", "dhp", "partition"
    ):
        logger.warning(
            "--workers is only supported by apriori/dhp/partition; "
            "running %s serially", args.algorithm,
        )
        workers = None
    engine = getattr(args, "engine", None)
    if engine is not None and args.algorithm not in ("apriori", "partition"):
        logger.warning(
            "--engine is only supported by apriori/partition; "
            "ignoring it for %s", args.algorithm,
        )
        engine = None
    checkpoint_dir = getattr(args, "checkpoint_dir", None)
    resume = bool(getattr(args, "resume", False))
    if (checkpoint_dir or resume) and args.algorithm not in (
        "apriori", "dhp", "partition"
    ):
        logger.warning(
            "--checkpoint-dir/--resume are only supported by "
            "apriori/dhp/partition; ignoring them for %s", args.algorithm,
        )
        checkpoint_dir, resume = None, False
    if resume and not checkpoint_dir:
        raise ValueError("--resume requires --checkpoint-dir")
    pruner = NullPruner()
    if args.ossm:
        ossm = OSSM.load(args.ossm)
        record_ossm_build(ossm)
        logger.info("loaded OSSM %r from %s", ossm, args.ossm)
        pruner = OSSMPruner(ossm)
    if args.algorithm == "apriori":
        miner = Apriori(
            pruner=pruner, max_level=max_level, workers=workers,
            engine=engine, checkpoint_dir=checkpoint_dir, resume=resume,
        )
    elif args.algorithm == "dhp":
        miner = DHP(
            pruner=pruner, max_level=max_level, workers=workers,
            checkpoint_dir=checkpoint_dir, resume=resume,
        )
    elif args.algorithm == "depthproject":
        miner = DepthProject(pruner=pruner, max_level=max_level)
    elif args.algorithm == "partition":
        miner = Partition(
            max_level=max_level, workers=workers, engine=engine,
            checkpoint_dir=checkpoint_dir, resume=resume,
        )
    elif args.algorithm == "fpgrowth":
        miner = FPGrowth(max_level=max_level)
    elif args.algorithm == "charm":
        from .mining.closed import mine_closed

        result = mine_closed(db, args.minsup, max_level=max_level)
        miner = None
    else:
        miner = Eclat(max_level=max_level)
    if miner is not None:
        result = miner.mine(db, args.minsup)
    print(
        f"{result.algorithm}: {result.n_frequent} frequent itemsets "
        f"(minsup {result.min_support} of {len(db)}) "
        f"in {result.elapsed_seconds:.2f}s; "
        f"candidates counted {result.candidates_counted()}"
    )
    shown = result.sorted_itemsets()
    if args.top:
        shown = shown[: args.top]
    for itemset, support in shown:
        print(f"  {{{','.join(map(str, itemset))}}}: {support}")
    return 0


def _parse_query_lines(lines) -> list[tuple[int, ...]]:
    """Parse itemset-per-line query text (comma or space separated)."""
    queries: list[tuple[int, ...]] = []
    for line in lines:
        text = line.split("#", 1)[0].strip()
        if not text:
            continue
        items = text.replace(",", " ").split()
        queries.append(tuple(int(item) for item in items))
    return queries


def _parse_listen(spec: str) -> tuple[str, int]:
    """``[HOST:]PORT`` → (host, port); bare ``:0``/``0`` binds loopback."""
    host, sep, port_text = spec.rpartition(":")
    if not sep:
        host, port_text = "", spec
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(
            f"invalid --listen {spec!r}: expected [HOST:]PORT"
        ) from None
    if not 0 <= port <= 65535:
        raise ValueError(f"invalid --listen port {port}")
    return host or "127.0.0.1", port


def _sighup_quota_reload(registry: TenantRegistry) -> None:
    """SIGHUP: re-read ``quotas.json`` overrides without dropping
    connections (a no-op with a warning when no state dir is attached)."""
    if registry.store is None:
        logger.warning(
            "SIGHUP ignored: no --state-dir to re-read quota "
            "overrides from"
        )
        return
    try:
        applied = registry.apply_quota_overrides()
    except ValueError as exc:
        logger.warning("SIGHUP quota overrides not applied: %s", exc)
        return
    logger.info("SIGHUP: applied %d quota override(s)", applied)


def _cmd_serve_gateway(args: argparse.Namespace, ossm: OSSM) -> int:
    """``serve --listen``: run the multi-tenant HTTP gateway until
    SIGINT/SIGTERM, serving the loaded map as the ``--tenant`` tenant.

    With ``--state-dir`` the control plane is durable: boot recovers
    every tenant from the write-ahead log + artifact directory, every
    create/publish/delete is WAL-logged before it takes effect, and
    shutdown drains in-flight work under ``--drain-timeout`` with the
    gateway's ``/ready`` flipped to 503 so load balancers fail over.
    """
    host, port = _parse_listen(args.listen)
    quota = TenantQuota(rate=args.rate, burst=args.burst)

    # The gateway's /metrics route renders the active registry; a
    # long-running server should always export live counters, so
    # activate one here unless --metrics-out already did.
    metrics_scope: contextlib.AbstractContextManager[object]
    if get_registry().enabled:
        metrics_scope = contextlib.nullcontext()
    else:
        metrics_scope = use_registry(MetricsRegistry())

    registry_kwargs: dict[str, object] = dict(
        max_pending_total=args.max_pending,
        default_quota=quota,
        workers=args.workers or None,
        cache_size=args.cache_size,
        timeout=args.timeout,
        slo_target=args.slo_target,
    )

    async def run() -> None:
        if args.state_dir is not None:
            registry = TenantRegistry.recover(
                TenantStore(args.state_dir), **registry_kwargs
            )
        else:
            registry = TenantRegistry(**registry_kwargs)
        recovered = len(registry)
        try:
            if args.tenant in registry:
                # The WAL wins: the recovered epoch keeps serving and
                # the --ossm map stays the bootstrap-only default.
                epoch = registry.get(args.tenant).epoch
            else:
                epoch = registry.create(args.tenant, ossm).epoch
            async with Gateway(registry, host=host, port=port) as gateway:
                suffix = (
                    f" ({recovered} tenant(s) recovered "
                    f"from {args.state_dir})"
                    if args.state_dir is not None
                    else ""
                )
                print(
                    f"gateway on {gateway.url}/ "
                    f"serving tenant {args.tenant!r} at epoch {epoch}"
                    f"{suffix}",
                    flush=True,
                )
                stop = asyncio.Event()
                loop = asyncio.get_running_loop()
                for signum in (signal.SIGINT, signal.SIGTERM):
                    loop.add_signal_handler(signum, stop.set)
                loop.add_signal_handler(
                    signal.SIGHUP, _sighup_quota_reload, registry
                )
                try:
                    await stop.wait()
                finally:
                    for signum in (
                        signal.SIGINT, signal.SIGTERM, signal.SIGHUP
                    ):
                        loop.remove_signal_handler(signum)
                # Graceful drain: readiness off first (load balancers
                # stop routing within a probe interval), then let
                # in-flight batches finish under the deadline; the
                # listener itself closes when the Gateway context
                # exits, so health probes get answers throughout.
                gateway.begin_drain()
                injector = get_injector()
                if injector.enabled:
                    # Off-loop so /ready keeps answering 503 (and
                    # /health 200) while the chaos harness holds the
                    # gateway in this window.
                    await asyncio.to_thread(
                        injector.maybe_sleep, "serve.drain.mid"
                    )
                try:
                    await asyncio.wait_for(
                        registry.aclose(), args.drain_timeout
                    )
                except asyncio.TimeoutError:
                    logger.warning(
                        "drain deadline (%.1fs) elapsed with work "
                        "still in flight; exiting anyway",
                        args.drain_timeout,
                    )
        finally:
            # Backstop for error paths and deadline exits: the WAL is
            # flushed and closed no matter how the gateway came down.
            if registry.store is not None:
                registry.store.close()

    try:
        with metrics_scope:
            asyncio.run(run())
    except KeyboardInterrupt:  # signal handler not installable
        pass
    print("gateway stopped")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    ossm = OSSM.load(args.ossm)
    record_ossm_build(ossm)
    if args.listen is not None:
        return _cmd_serve_gateway(args, ossm)
    if args.queries == "-":
        queries = _parse_query_lines(sys.stdin)
    else:
        with open(args.queries, encoding="utf-8") as source:
            queries = _parse_query_lines(source)
    service = BoundQueryService(
        ossm,
        cache_size=args.cache_size,
        max_pending=args.max_pending,
        timeout=args.timeout,
        workers=args.workers or None,
        slo_target=args.slo_target,
    )

    async def run() -> None:
        async with contextlib.AsyncExitStack() as scopes:
            await scopes.enter_async_context(service)
            if args.ops_port is not None:
                ops = await scopes.enter_async_context(
                    OpsServer(service=service, port=args.ops_port)
                )
                print(f"ops endpoint on http://{ops.host}:{ops.port}/")
            batch = max(1, args.batch)
            for start in range(0, len(queries), batch):
                chunk = queries[start:start + batch]
                bounds = await service.query_batch(chunk)
                if not args.quiet:
                    for itemset, bound in zip(chunk, bounds):
                        print(f"{{{','.join(map(str, itemset))}}}: {bound}")

    asyncio.run(run())
    stats = service.stats()
    if not args.quiet:
        latency = stats["latency"]
        slo = stats["slo"]
        line = (
            f"latency p50 {latency['p50_ms']:.2f}ms / "
            f"p95 {latency['p95_ms']:.2f}ms / p99 {latency['p99_ms']:.2f}ms "
            f"over {latency['window_count']} batches"
        )
        if slo["target_seconds"] is not None:
            line += (
                f"; SLO {slo['violations']}/{slo['requests']} violations, "
                f"error budget {slo['budget_remaining']:.1%} remaining"
            )
        print(line)
    cache = stats["cache"]
    print(
        f"served {len(queries)} queries at epoch {stats['epoch']}: "
        f"{cache['hits']} cache hits / {cache['misses']} misses "
        f"(hit rate {cache['hit_rate']:.2%}), "
        f"{cache['evictions']} evictions"
    )
    return 0


def _cmd_bench_history(args: argparse.Namespace) -> int:
    records = load_bench_records(args.dir)
    if not records:
        print(f"no BENCH_*.json files under {args.dir}")
        return 0
    trajs = trajectories(
        records,
        window=args.window,
        min_records=args.min_records,
        tolerance=args.tolerance,
    )
    print(render_history(trajs), end="")
    regressed = any(traj.status == "regression" for traj in trajs)
    return 1 if args.check and regressed else 0


def _cmd_recipe(args: argparse.Namespace) -> int:
    strategy = recommend(
        RecipeInputs(
            n_user=args.n_user,
            n_pages=args.pages,
            data_is_skewed=args.skewed,
            segmentation_cost_matters=args.cost_matters,
        )
    )
    print(strategy)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "ossm": _cmd_ossm,
        "mine": _cmd_mine,
        "serve": _cmd_serve,
        "recipe": _cmd_recipe,
        "lint": run_lint,
        "bench-history": _cmd_bench_history,
    }
    if args.log_level:
        configure_logging(args.log_level, json=args.log_json)

    recorder = TraceRecorder() if args.trace_out else None
    registry = MetricsRegistry() if args.metrics_out else None
    with contextlib.ExitStack() as stack:
        if recorder is not None:
            stack.enter_context(use_recorder(recorder))
        if registry is not None:
            stack.enter_context(use_registry(registry))
        try:
            code = handlers[args.command](args)
        except (ResilienceError, OSError, ValueError) as exc:
            # Operational failures — missing or damaged inputs, an
            # unusable checkpoint directory, mismatched resume state —
            # become one diagnosable line, not a traceback.
            print(
                f"error: {type(exc).__name__}: {exc}", file=sys.stderr
            )
            return 2
    if recorder is not None:
        with open(args.trace_out, "w", encoding="utf-8") as sink:
            sink.write(recorder.to_json())
        logger.info("wrote trace to %s", args.trace_out)
    if registry is not None:
        with open(args.metrics_out, "w", encoding="utf-8") as sink:
            sink.write(registry.to_json())
        logger.info("wrote metrics to %s", args.metrics_out)
    return code


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
