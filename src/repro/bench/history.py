"""BENCH history: per-metric trajectories and regression flagging.

Every benchmark run appends its record to ``BENCH_<name>.json`` (see
``benchmarks/_shared.emit_bench``), so the repo root accumulates the
perf trajectory of the project — the raw material for the ROADMAP's
self-tuning planner and for catching regressions before they ship.
This module reads those files back and answers two questions:

* **what moved** — for every ``(bench, config, metric)`` series, the
  latest value against the median of the preceding window;
* **what regressed** — series whose latest value worsened beyond a
  noise band, in the metric's *known* direction. Direction is
  inferred from the metric name (``*_seconds`` down, ``*_qps`` up, …);
  metrics with no known direction are reported but never flagged,
  because guessing "which way is better" produces false alarms.

Records of one bench may cover several configurations (workers=2 vs 4,
different client counts); series are grouped by the record's
identifying fields so apples compare with apples. The CLI surface is
``repro-ossm bench-history [--check]`` — warn-only in CI until the
trajectory is deep enough to make the gate blocking.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from statistics import median

__all__ = [
    "Trajectory",
    "load_bench_records",
    "metric_direction",
    "trajectories",
    "render_history",
    "CONFIG_KEYS",
]

#: Record fields that identify a configuration rather than measure it.
#: They partition a bench's records into comparable series and are
#: excluded from the metric set.
CONFIG_KEYS: frozenset[str] = frozenset(
    {
        "bench", "variant", "case", "kind", "mode", "algorithm",
        "engine", "workers", "clients", "n_segments", "n_user",
        "scale", "seed", "epoch", "level",
    }
)

#: Name fragments implying "lower is better" / "higher is better".
#: Matched as substrings of the metric name; first table wins.
_LOWER_IS_BETTER: tuple[str, ...] = (
    "seconds", "_ms", "latency", "overhead", "candidates",
    "loss", "violations", "c2_ratio", "bytes", "_mb",
)
_HIGHER_IS_BETTER: tuple[str, ...] = (
    "qps", "throughput", "speedup", "hit_rate", "recovered",
    "pruned_fraction", "budget_remaining",
)


def metric_direction(name: str) -> str | None:
    """``"down"`` / ``"up"`` for the improving direction, else None."""
    lowered = name.lower()
    for fragment in _LOWER_IS_BETTER:
        if fragment in lowered:
            return "down"
    for fragment in _HIGHER_IS_BETTER:
        if fragment in lowered:
            return "up"
    return None


@dataclass(frozen=True)
class Trajectory:
    """One ``(bench, config, metric)`` series and its verdict."""

    bench: str
    config: str
    metric: str
    values: tuple[float, ...]
    baseline: float | None  # median of the window before the latest
    latest: float
    delta: float | None  # relative change vs baseline, signed
    direction: str | None  # "down" | "up" | None (unknown)
    status: str  # "ok" | "regression" | "improved" | "info" | "new"

    def describe(self) -> str:
        """One human line, e.g. for the regression summary."""
        delta = (
            f"{self.delta:+.1%}" if self.delta is not None else "n/a"
        )
        return (
            f"{self.bench}[{self.config}] {self.metric}: "
            f"{self.latest:g} vs baseline "
            f"{self.baseline if self.baseline is not None else 'n/a'} "
            f"({delta}, n={len(self.values)})"
        )


def load_bench_records(root: str | Path) -> dict[str, list[dict]]:
    """All ``BENCH_<name>.json`` files under *root*, by bench name.

    Files that fail to parse are skipped with a marker entry rather
    than aborting the sweep — a truncated artifact from a crashed run
    must not hide every other trajectory.
    """
    records: dict[str, list[dict]] = {}
    for path in sorted(Path(root).glob("BENCH_*.json")):
        name = path.stem[len("BENCH_"):]
        try:
            loaded = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            records[name] = []
            continue
        if isinstance(loaded, list):
            records[name] = [
                entry for entry in loaded if isinstance(entry, dict)
            ]
        elif isinstance(loaded, dict):
            records[name] = [loaded]
        else:
            records[name] = []
    return records


def _config_key(record: dict) -> str:
    parts = [
        f"{key}={record[key]}"
        for key in sorted(CONFIG_KEYS & record.keys())
        if key != "bench"
    ]
    return ",".join(parts) if parts else "default"


def _metric_items(record: dict) -> list[tuple[str, float]]:
    items = []
    for key, value in record.items():
        if key in CONFIG_KEYS:
            continue
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        items.append((key, float(value)))
    return items


def trajectories(
    records_by_bench: dict[str, list[dict]],
    *,
    window: int = 5,
    min_records: int = 3,
    tolerance: float = 0.25,
) -> list[Trajectory]:
    """Per-series verdicts over *records_by_bench* (file order = time).

    A series shorter than *min_records* is ``"new"`` — not enough
    history to define a noise band. Otherwise the latest value is
    compared against the median of up to *window* preceding values;
    a relative move beyond *tolerance* in the metric's worsening
    direction is a ``"regression"``, beyond it in the improving
    direction ``"improved"``, and within the band ``"ok"``. Metrics
    with unknown direction are ``"info"``.
    """
    if window < 1:
        raise ValueError("window must be >= 1")
    if tolerance <= 0:
        raise ValueError("tolerance must be positive")
    out: list[Trajectory] = []
    for bench in sorted(records_by_bench):
        series: dict[tuple[str, str], list[float]] = {}
        for record in records_by_bench[bench]:
            config = _config_key(record)
            for metric, value in _metric_items(record):
                series.setdefault((config, metric), []).append(value)
        for (config, metric), values in sorted(series.items()):
            direction = metric_direction(metric)
            latest = values[-1]
            if len(values) < min_records:
                out.append(Trajectory(
                    bench, config, metric, tuple(values),
                    None, latest, None, direction, "new",
                ))
                continue
            history = values[:-1][-window:]
            baseline = median(history)
            if baseline == 0:
                delta = None
                status = "info"
            else:
                delta = (latest - baseline) / abs(baseline)
                if direction is None:
                    status = "info"
                elif direction == "down":
                    status = (
                        "regression" if delta > tolerance
                        else "improved" if delta < -tolerance
                        else "ok"
                    )
                else:
                    status = (
                        "regression" if delta < -tolerance
                        else "improved" if delta > tolerance
                        else "ok"
                    )
            out.append(Trajectory(
                bench, config, metric, tuple(values),
                baseline, latest, delta, direction, status,
            ))
    return out


def render_history(trajs: list[Trajectory]) -> str:
    """The trajectory table plus a regression summary block."""
    from .reporting import format_table

    rows = []
    for traj in trajs:
        rows.append([
            traj.bench,
            traj.config,
            traj.metric,
            len(traj.values),
            "-" if traj.baseline is None else f"{traj.baseline:g}",
            f"{traj.latest:g}",
            "-" if traj.delta is None else f"{traj.delta:+.1%}",
            {"down": "↓", "up": "↑", None: "?"}[traj.direction],
            traj.status,
        ])
    table = format_table(
        ["bench", "config", "metric", "n", "baseline", "latest",
         "delta", "dir", "status"],
        rows,
    )
    regressions = [t for t in trajs if t.status == "regression"]
    if not regressions:
        return table + "\nno regressions flagged\n"
    lines = [table, f"\n{len(regressions)} regression(s) flagged:"]
    lines.extend(f"  REGRESSION {t.describe()}" for t in regressions)
    return "\n".join(lines) + "\n"
