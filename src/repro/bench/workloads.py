"""Workload registry for the experiment suite.

The paper ran C code over up to 5 million transactions; this
reproduction runs pure Python, so every experiment is parameterized by
a *scale*:

* ``smoke`` — seconds; used by CI-style runs of the bench suite;
* ``default`` — the checked-in configuration; same statistical regime
  as the paper (average item support sits at the support threshold,
  heavy-tailed pattern weights), reduced ``N``;
* ``paper`` — closest practical approximation of the paper's sizes.

Select with the ``REPRO_SCALE`` environment variable. Databases are
cached per (workload, scale) within a process so a bench module can
reuse them across cases.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import lru_cache

from ..data.alarms import AlarmConfig, AlarmStreamGenerator
from ..data.pages import PagedDatabase
from ..data.quest import QuestConfig, QuestGenerator
from ..data.skewed import SkewedConfig, SkewedGenerator
from ..data.transactions import TransactionDatabase

__all__ = [
    "Scale",
    "current_scale",
    "regular_synthetic",
    "skewed_synthetic",
    "alarm_stream",
    "paged",
    "regular_synthetic_pages",
    "drifting_synthetic_pages",
    "MINSUP",
    "BUBBLE_MINSUP",
]

#: The paper's query threshold (Section 6.2) and the bubble-list
#: construction threshold (Section 6.3 / Figure 6).
MINSUP = 0.01
BUBBLE_MINSUP = 0.0025

_VALID_SCALES = ("smoke", "default", "paper")


@dataclass(frozen=True)
class Scale:
    """Concrete sizes for one scale tier."""

    name: str
    n_transactions: int
    n_items: int
    n_patterns: int
    page_size: int
    alarm_windows: int

    @property
    def n_pages(self) -> int:
        """Initial page count ``P`` implied by the tier."""
        return max(1, -(-self.n_transactions // self.page_size))


_TIERS = {
    "smoke": Scale(
        name="smoke",
        n_transactions=2000,
        n_items=200,
        n_patterns=400,
        page_size=25,
        alarm_windows=1000,
    ),
    "default": Scale(
        name="default",
        n_transactions=10_000,
        n_items=1000,
        n_patterns=2000,
        page_size=50,
        alarm_windows=5000,
    ),
    "paper": Scale(
        name="paper",
        n_transactions=50_000,
        n_items=1000,
        n_patterns=2000,
        page_size=100,
        alarm_windows=5000,
    ),
}


def current_scale() -> Scale:
    """The tier selected by ``REPRO_SCALE`` (default ``default``)."""
    name = os.environ.get("REPRO_SCALE", "default").lower()
    if name not in _VALID_SCALES:
        raise ValueError(
            f"REPRO_SCALE must be one of {_VALID_SCALES}, got {name!r}"
        )
    return _TIERS[name]


@lru_cache(maxsize=None)
def regular_synthetic(scale_name: str | None = None) -> TransactionDatabase:
    """The paper's *regular-synthetic* (IBM Quest) workload."""
    scale = _TIERS[scale_name] if scale_name else current_scale()
    config = QuestConfig(
        n_transactions=scale.n_transactions,
        n_items=scale.n_items,
        avg_transaction_len=10.0,
        avg_pattern_len=4.0,
        n_patterns=scale.n_patterns,
        seed=42,
    )
    return QuestGenerator(config).generate()


@lru_cache(maxsize=None)
def skewed_synthetic(scale_name: str | None = None) -> TransactionDatabase:
    """The paper's *skewed-synthetic* ("seasonal") workload."""
    scale = _TIERS[scale_name] if scale_name else current_scale()
    config = SkewedConfig(
        n_transactions=scale.n_transactions,
        n_items=scale.n_items,
        avg_transaction_len=10.0,
        skew=0.8,
        n_seasons=2,
        seed=42,
    )
    return SkewedGenerator(config).generate()


@lru_cache(maxsize=None)
def alarm_stream(scale_name: str | None = None) -> TransactionDatabase:
    """The Nokia-substitute alarm workload (see DESIGN.md §5)."""
    scale = _TIERS[scale_name] if scale_name else current_scale()
    config = AlarmConfig(n_windows=scale.alarm_windows, seed=42)
    return AlarmStreamGenerator(config).generate()


def paged(
    database: TransactionDatabase, page_size: int | None = None
) -> PagedDatabase:
    """Page a workload at the current scale's page size."""
    size = page_size if page_size is not None else current_scale().page_size
    return PagedDatabase(database, page_size=size)


@lru_cache(maxsize=None)
def drifting_synthetic_pages(
    n_pages: int, scale_name: str | None = None
) -> PagedDatabase:
    """A non-stationary workload sized to exactly *n_pages* pages.

    The paper's Figure 5 collections are large real-scale data whose
    item frequencies vary along the collection (the premise of the
    whole technique: "real life data sets are not random"). A
    stationary Quest stream loses that property as ``N`` grows — the
    per-segment supports converge to the global profile and there is
    nothing left for Equation (1) to exploit. This builder produces the
    drifting equivalent: item popularity shifts across ~50-page eras
    (mild skew), the regime a months-long transaction log actually has.
    """
    scale = _TIERS[scale_name] if scale_name else current_scale()
    config = QuestConfig(
        n_transactions=n_pages * scale.page_size,
        n_items=scale.n_items,
        avg_transaction_len=10.0,
        avg_pattern_len=4.0,
        n_patterns=scale.n_patterns,
        n_seasons=max(4, n_pages // 100),
        seasonal_skew=0.6,
        seed=42,
    )
    database = QuestGenerator(config).generate()
    return PagedDatabase(database, page_size=scale.page_size)


@lru_cache(maxsize=None)
def regular_synthetic_pages(
    n_pages: int, scale_name: str | None = None
) -> PagedDatabase:
    """A regular-synthetic workload sized to exactly *n_pages* pages.

    Figure 5 varies the initial page count ``P`` (500 for the pure
    strategies, 50 000 for the hybrids); this builder produces the
    scaled-down equivalents with everything else at the current tier.
    """
    scale = _TIERS[scale_name] if scale_name else current_scale()
    config = QuestConfig(
        n_transactions=n_pages * scale.page_size,
        n_items=scale.n_items,
        avg_transaction_len=10.0,
        avg_pattern_len=4.0,
        n_patterns=scale.n_patterns,
        seed=42,
    )
    database = QuestGenerator(config).generate()
    return PagedDatabase(database, page_size=scale.page_size)
