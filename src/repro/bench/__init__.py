"""Benchmark harness: workloads, metrics, per-figure experiment runner.

``benchmarks/`` at the repository root contains one module per paper
table/figure; each builds on this package. See DESIGN.md §4 for the
experiment index.
"""

from .harness import Baseline, Cell, baseline, evaluate, segment
from .history import (
    CONFIG_KEYS,
    Trajectory,
    load_bench_records,
    metric_direction,
    render_history,
    trajectories,
)
from .metrics import candidate_ratio, ossm_megabytes, pruned_fraction, speedup
from .reporting import banner, format_cell_metrics, format_cells, format_table
from .workloads import (
    BUBBLE_MINSUP,
    drifting_synthetic_pages,
    MINSUP,
    Scale,
    alarm_stream,
    current_scale,
    paged,
    regular_synthetic,
    regular_synthetic_pages,
    skewed_synthetic,
)

__all__ = [
    "Baseline",
    "Cell",
    "baseline",
    "evaluate",
    "segment",
    "CONFIG_KEYS",
    "Trajectory",
    "load_bench_records",
    "metric_direction",
    "render_history",
    "trajectories",
    "candidate_ratio",
    "ossm_megabytes",
    "pruned_fraction",
    "speedup",
    "banner",
    "format_cell_metrics",
    "format_cells",
    "format_table",
    "BUBBLE_MINSUP",
    "drifting_synthetic_pages",
    "MINSUP",
    "Scale",
    "alarm_stream",
    "current_scale",
    "paged",
    "regular_synthetic",
    "regular_synthetic_pages",
    "skewed_synthetic",
]
