"""Plain-text table/series rendering for the bench suite.

Every bench target prints the rows/series the corresponding paper
figure or table reports, in a fixed-width layout that diffs cleanly in
``bench_output.txt``.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = ["format_table", "format_cells", "format_cell_metrics", "banner"]

from ..obs.report import pruning_effectiveness
from .harness import Cell

_CELL_HEADERS = (
    "algorithm",
    "n_user",
    "seg_s",
    "loss_evals",
    "base_s",
    "ossm_s",
    "speedup",
    "C2_ratio",
    "ossm_MB",
)


def _render(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence]
) -> str:
    """Fixed-width table; floats rendered with three decimals."""
    rendered = [[_render(value) for value in row] for row in rows]
    widths = [
        max(len(header), *(len(row[i]) for row in rendered), 1)
        if rendered
        else len(header)
        for i, header in enumerate(headers)
    ]
    lines = [
        "  ".join(h.rjust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered:
        lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def format_cells(cells: Iterable[Cell]) -> str:
    """Render harness cells with the standard column set."""
    return format_table(_CELL_HEADERS, (cell.row() for cell in cells))


def format_cell_metrics(cell: Cell) -> str:
    """Render the observability snapshot attached to one harness cell.

    Returns the pruning-effectiveness summary of the cell's final
    instrumented mining repeat, or an empty string when the cell was
    produced without metrics.
    """
    if not cell.metrics:
        return ""
    return pruning_effectiveness(cell.metrics)


def banner(title: str) -> str:
    """Section banner used between experiments in bench output."""
    bar = "=" * max(len(title), 8)
    return f"\n{bar}\n{title}\n{bar}"
