"""Experiment harness: runs one (workload, segmenter, n_user) cell.

The unit every figure is assembled from is :func:`evaluate`:

1. segment the paged workload with the given algorithm (timed —
   Figure 5's "segmentation time");
2. mine with the host algorithm *without* the OSSM (timed once and
   shared across cells via :func:`baseline`);
3. mine *with* the OSSM pruner (timed);
4. assert both runs found identical frequent sets (soundness check —
   every cell of every figure re-verifies the core claim);
5. report speedup, candidate-2 ratio, OSSM size, and counts.

Mining uses the vertical :class:`~repro.mining.counting.TidsetCounter`,
whose work is proportional to the number of counted candidates — the
same property the paper's hash-tree C code has (see DESIGN.md §5).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..core.ossm import OSSM
from ..core.segmentation import SegmentationResult, Segmenter
from ..data.pages import PagedDatabase
from ..data.transactions import TransactionDatabase
from ..mining.apriori import Apriori
from ..mining.base import MiningResult
from ..mining.counting import SupportCounter, TidsetCounter
from ..mining.pruning import OSSMPruner
from ..parallel.counter import ParallelCounter
from ..obs.metrics import MetricsRegistry, use_registry
from .metrics import candidate_ratio, ossm_megabytes, speedup

__all__ = ["Baseline", "Cell", "baseline", "evaluate", "segment"]

#: Apriori's candidate-2 pass dominates (Section 6.2 of the paper);
#: capping the level keeps the Python suite fast without changing any
#: comparison (both sides of every ratio use the same cap).
DEFAULT_MAX_LEVEL = 3


@dataclass(frozen=True)
class Baseline:
    """One plain (no-OSSM) mining run, shared by all cells of a figure.

    ``metrics`` is the observability snapshot of the final timed repeat
    (one :meth:`~repro.obs.MetricsRegistry.snapshot` dict), so bench
    results carry counter/timer evidence alongside the wall times.
    """

    result: MiningResult
    seconds: float
    min_support: float | int
    max_level: int
    metrics: dict | None = None


@dataclass(frozen=True)
class Cell:
    """One measured point of a figure."""

    algorithm: str
    n_user: int
    segmentation_seconds: float
    loss_evaluations: int
    mining_seconds: float
    baseline_seconds: float
    speedup: float
    c2_ratio: float
    ossm_mb: float
    #: Metric snapshot of the final instrumented mining repeat
    #: (prune/keep counters, bound-gap histogram, counting timers).
    metrics: dict | None = None

    def row(self) -> tuple:
        """Values in reporting order."""
        return (
            self.algorithm,
            self.n_user,
            self.segmentation_seconds,
            self.loss_evaluations,
            self.baseline_seconds,
            self.mining_seconds,
            self.speedup,
            self.c2_ratio,
            self.ossm_mb,
        )


#: One process-wide tidset cache: verticalization is a per-database
#: cost shared identically by the baseline and every OSSM run, so it is
#: excluded from the comparison the same way the paper's shared I/O is.
_COUNTER = TidsetCounter()


def _bench_counter(
    workers: int | None,
    segment_sizes: tuple[int, ...] | None = None,
) -> SupportCounter:
    """Shared serial tidset counter, or a fresh sharded parallel one."""
    if workers is None:
        return _COUNTER
    return ParallelCounter(workers=workers, segment_sizes=segment_sizes)


def _release(counter: SupportCounter) -> None:
    if counter is not _COUNTER and isinstance(counter, ParallelCounter):
        counter.close()


def baseline(
    database: TransactionDatabase,
    min_support: float | int,
    max_level: int = DEFAULT_MAX_LEVEL,
    repeats: int = 3,
    workers: int | None = None,
) -> Baseline:
    """Time the host miner without any OSSM (best of *repeats* runs).

    The final repeat runs with a fresh metrics registry installed, and
    its snapshot is attached to the returned :class:`Baseline`.
    ``workers`` switches counting to the sharded parallel engine (the
    exact same counts — only where the work runs changes).
    """
    best = float("inf")
    result = None
    repeats = max(1, repeats)
    registry = MetricsRegistry()
    counter = _bench_counter(workers)
    try:
        for index in range(repeats):
            miner = Apriori(counter=counter, max_level=max_level)
            start = time.perf_counter()
            if index == repeats - 1:
                with use_registry(registry):
                    result = miner.mine(database, min_support)
            else:
                result = miner.mine(database, min_support)
            best = min(best, time.perf_counter() - start)
    finally:
        _release(counter)
    return Baseline(
        result=result,
        seconds=best,
        min_support=min_support,
        max_level=max_level,
        metrics=registry.snapshot(),
    )


def segment(
    paged: PagedDatabase, segmenter: Segmenter, n_segments: int
) -> SegmentationResult:
    """Run one segmentation (thin wrapper, kept for symmetry)."""
    return segmenter.segment(paged, n_segments)


def evaluate(
    database: TransactionDatabase,
    ossm: OSSM,
    base: Baseline,
    segmentation: SegmentationResult | None = None,
    repeats: int = 3,
    workers: int | None = None,
) -> Cell:
    """Mine with *ossm* attached and compare against the baseline.

    The final repeat runs instrumented; its metric snapshot (prune
    counters, bound-gap histogram, counting timers) rides on the cell.
    ``workers`` switches counting to the sharded parallel engine, with
    shard boundaries aligned to this OSSM's segment composition.
    """
    best = float("inf")
    result = None
    repeats = max(1, repeats)
    registry = MetricsRegistry()
    counter = _bench_counter(workers, segment_sizes=ossm.segment_sizes)
    try:
        for index in range(repeats):
            miner = Apriori(
                pruner=OSSMPruner(ossm),
                counter=counter,
                max_level=base.max_level,
            )
            start = time.perf_counter()
            if index == repeats - 1:
                with use_registry(registry):
                    result = miner.mine(database, base.min_support)
            else:
                result = miner.mine(database, base.min_support)
            best = min(best, time.perf_counter() - start)
    finally:
        _release(counter)
    if not result.same_itemsets(base.result):
        raise AssertionError(
            "OSSM pruning changed the mining output — bound unsound"
        )
    return Cell(
        algorithm=segmentation.algorithm if segmentation else "given",
        n_user=ossm.n_segments,
        segmentation_seconds=(
            segmentation.elapsed_seconds if segmentation else 0.0
        ),
        loss_evaluations=(
            segmentation.loss_evaluations if segmentation else 0
        ),
        mining_seconds=best,
        baseline_seconds=base.seconds,
        speedup=speedup(base.seconds, best),
        c2_ratio=candidate_ratio(result, base.result),
        ossm_mb=ossm_megabytes(ossm),
        metrics=registry.snapshot(),
    )
