"""Metrics the paper's figures report.

* **Speedup** (Figure 4a, 5, 6b): runtime of the host miner without the
  OSSM divided by its runtime with the OSSM.
* **Candidate-2 ratio** (Figure 4b): candidate 2-itemsets counted with
  the OSSM divided by those counted without (1.0 = no pruning).
* **OSSM size** (Section 6.2's "0.2 megabytes"): the nominal 2-byte-cell
  storage of the structure.
"""

from __future__ import annotations

from ..core.ossm import OSSM
from ..mining.base import MiningResult

__all__ = ["speedup", "candidate_ratio", "pruned_fraction", "ossm_megabytes"]


def speedup(time_without: float, time_with: float) -> float:
    """Figure 4(a)'s y-axis: baseline runtime over OSSM runtime.

    The zero-time edges are defined explicitly rather than left to
    float division:

    * ``time_with == 0`` with ``time_without > 0`` returns ``inf`` —
      the OSSM run was too fast to measure, an unbounded speedup;
    * ``time_without == time_with == 0`` returns ``1.0`` — both runs
      were unmeasurably fast, i.e. indistinguishable, *not* a speedup
      (the ``0/0`` this would otherwise be is meaningless);
    * negative inputs raise :class:`ValueError` (clock misuse).
    """
    if time_without < 0 or time_with < 0:
        raise ValueError("times must be non-negative")
    if time_with == 0:
        return float("inf") if time_without > 0 else 1.0
    return time_without / time_with


def candidate_ratio(
    with_ossm: MiningResult,
    without_ossm: MiningResult,
    level: int = 2,
) -> float:
    """Figure 4(b)'s y-axis: fraction of level-``k`` candidates not pruned."""
    baseline = without_ossm.candidates_counted(level)
    if baseline == 0:
        return 1.0
    return with_ossm.candidates_counted(level) / baseline


def pruned_fraction(result: MiningResult, level: int = 2) -> float:
    """Fraction of generated level-``k`` candidates the pruner removed."""
    generated = result.candidates_generated(level)
    if generated == 0:
        return 0.0
    if level > len(result.levels):
        return 0.0
    return result.levels[level - 1].candidates_pruned / generated


def ossm_megabytes(ossm: OSSM) -> float:
    """Nominal OSSM size in megabytes (the paper's accounting)."""
    return ossm.nominal_size_bytes() / 1_000_000
