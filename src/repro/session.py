"""One-object pipeline facade: data → segmentation → OSSM → mine/serve.

:class:`Session` strings the package's layers together behind a small
keyword-only API with the canonical parameter names used everywhere
else (``min_support``, ``workers``, ``n_segments``)::

    import repro

    session = (
        repro.Session(workers=4)
        .generate("quest", n_transactions=5_000, n_items=400, seed=0)
        .segment(n_segments=40, algorithm="greedy")
    )
    result = session.mine(min_support=0.01)
    service = session.serve(cache_size=1024)     # BoundQueryService

Every step is also available à la carte (the facade only forwards);
the one piece of state a Session adds is bookkeeping for serving:
:meth:`extend` grows the collection through
:func:`~repro.core.incremental.extend_ossm` and pushes the
epoch-advanced map into every service the session has handed out, so
their caches invalidate per DESIGN.md §10.
"""

from __future__ import annotations

import asyncio
import os
from collections.abc import Sequence
from typing import Any

from .core.greedy import GreedySegmenter
from .core.hybrid import RandomGreedySegmenter, RandomRCSegmenter
from .core.incremental import extend_ossm
from .core.ossm import OSSM
from .core.random_seg import RandomSegmenter
from .core.rc import RCSegmenter
from .core.segmentation import SegmentationResult, Segmenter
from .data import io as data_io
from .data.alarms import generate_alarms
from .data.pages import PagedDatabase
from .data.quest import generate_quest
from .data.skewed import generate_skewed
from .data.transactions import TransactionDatabase
from .mining.apriori import Apriori
from .mining.base import MiningResult
from .mining.depth_project import DepthProject
from .mining.dhp import DHP
from .mining.eclat import Eclat
from .mining.fpgrowth import FPGrowth
from .mining.partition import Partition
from .mining.pruning import NullPruner, OSSMPruner
from .serve.service import BoundQueryService

__all__ = ["Session"]

_SEGMENTERS: dict[str, Any] = {
    "greedy": GreedySegmenter,
    "rc": RCSegmenter,
    "random": RandomSegmenter,
    "random-rc": RandomRCSegmenter,
    "random-greedy": RandomGreedySegmenter,
}

_GENERATORS: dict[str, Any] = {
    "quest": generate_quest,
    "skewed": generate_skewed,
    "alarms": generate_alarms,
}


class Session:
    """Fluent end-to-end pipeline over one transaction collection.

    Parameters
    ----------
    workers:
        Default worker-process count forwarded to mining and serving
        (None = serial).
    page_size:
        Page granularity used when the collection is paged for
        segmentation.
    """

    def __init__(
        self, *, workers: int | None = None, page_size: int = 100
    ) -> None:
        if page_size < 1:
            raise ValueError("page_size must be >= 1")
        self.workers = workers
        self.page_size = int(page_size)
        self._database: TransactionDatabase | None = None
        self._segmentation: SegmentationResult | None = None
        self._ossm: OSSM | None = None
        self._services: list[BoundQueryService] = []

    # -- state accessors -------------------------------------------------

    @property
    def database(self) -> TransactionDatabase:
        """The loaded/generated collection (raises before one exists)."""
        if self._database is None:
            raise RuntimeError(
                "no database yet: call load(), use(), or generate() first"
            )
        return self._database

    @property
    def ossm(self) -> OSSM:
        """The current map (raises before segment()/use_ossm())."""
        if self._ossm is None:
            raise RuntimeError(
                "no OSSM yet: call segment() or use_ossm() first"
            )
        return self._ossm

    @property
    def segmentation(self) -> SegmentationResult | None:
        """Full result of the last segment() call, if any."""
        return self._segmentation

    # -- data ------------------------------------------------------------

    def load(self, path: str | os.PathLike[str]) -> "Session":
        """Load a transaction file (.dat/.txt/.npz) into the session."""
        self._database = data_io.load(os.fspath(path))
        return self

    def use(self, database: TransactionDatabase) -> "Session":
        """Adopt an already-built collection."""
        self._database = database
        return self

    def generate(self, kind: str = "quest", **params: Any) -> "Session":
        """Synthesize a workload (``quest``/``skewed``/``alarms``)."""
        generator = _GENERATORS.get(kind)
        if generator is None:
            raise ValueError(
                f"unknown workload kind {kind!r}; "
                f"expected one of {sorted(_GENERATORS)}"
            )
        self._database = generator(**params)
        return self

    # -- segmentation ----------------------------------------------------

    def segment(
        self,
        *,
        n_segments: int = 40,
        algorithm: str | Segmenter = "greedy",
        seed: int = 0,
        n_mid: int | None = None,
    ) -> "Session":
        """Page the collection and build its OSSM."""
        if isinstance(algorithm, Segmenter):
            segmenter = algorithm
        else:
            factory = _SEGMENTERS.get(algorithm)
            if factory is None:
                raise ValueError(
                    f"unknown segmenter {algorithm!r}; "
                    f"expected one of {sorted(_SEGMENTERS)}"
                )
            kwargs: dict[str, Any] = {}
            if algorithm in ("rc", "random", "random-rc", "random-greedy"):
                kwargs["seed"] = seed
            if algorithm in ("random-rc", "random-greedy") and n_mid:
                kwargs["n_mid"] = n_mid
            segmenter = factory(**kwargs)
        paged = PagedDatabase(self.database, page_size=self.page_size)
        self._segmentation = segmenter.segment(paged, n_segments=n_segments)
        self._ossm = self._segmentation.ossm
        return self

    def use_ossm(self, ossm: OSSM) -> "Session":
        """Adopt an existing map (e.g. loaded from .npz)."""
        self._ossm = ossm
        self._segmentation = None
        return self

    # -- growth ----------------------------------------------------------

    def extend(self, new_transactions: TransactionDatabase) -> "Session":
        """Grow the collection; the map advances one epoch.

        Any service handed out by :meth:`serve` is updated in place, so
        its epoch-tagged cache invalidates wholesale.
        """
        grown = extend_ossm(self.ossm, new_transactions,
                            page_size=self.page_size)
        self._ossm = grown
        if self._database is not None:
            self._database = self._database.concatenated(new_transactions)
        for service in self._services:
            service.update(grown)
        return self

    # -- mining ----------------------------------------------------------

    def mine(
        self,
        *,
        min_support: float | int,
        algorithm: str = "apriori",
        max_level: int | None = None,
        workers: int | None = None,
        engine: str | None = None,
    ) -> MiningResult:
        """Mine the collection, OSSM-pruned when a map has been built."""
        workers = self.workers if workers is None else workers
        pruner = (
            OSSMPruner(self._ossm) if self._ossm is not None else NullPruner()
        )
        if algorithm == "apriori":
            miner: Any = Apriori(
                pruner=pruner, max_level=max_level, workers=workers,
                engine=engine,
            )
        elif algorithm == "dhp":
            miner = DHP(pruner=pruner, max_level=max_level, workers=workers)
        elif algorithm == "partition":
            miner = Partition(
                max_level=max_level, workers=workers, engine=engine
            )
        elif algorithm == "depthproject":
            miner = DepthProject(pruner=pruner, max_level=max_level)
        elif algorithm == "fpgrowth":
            miner = FPGrowth(max_level=max_level)
        elif algorithm == "eclat":
            miner = Eclat(max_level=max_level)
        else:
            raise ValueError(f"unknown mining algorithm {algorithm!r}")
        return miner.mine(self.database, min_support)

    # -- serving ---------------------------------------------------------

    def serve(
        self,
        *,
        cache_size: int = 4096,
        max_pending: int = 1024,
        timeout: float | None = None,
        workers: int | None = None,
        parallel_threshold: int | None = None,
        slo_target: float | None = None,
        slo_objective: float = 0.99,
    ) -> BoundQueryService:
        """A :class:`BoundQueryService` over the session's map.

        Keyword names match the service constructor one for one — the
        session only forwards. The session keeps a reference so
        :meth:`extend` can push epoch-advanced maps into it and
        :meth:`close` can release it.
        """
        kwargs: dict[str, Any] = {}
        if parallel_threshold is not None:
            kwargs["parallel_threshold"] = parallel_threshold
        service = BoundQueryService(
            self.ossm,
            cache_size=cache_size,
            max_pending=max_pending,
            timeout=timeout,
            workers=self.workers if workers is None else workers,
            slo_target=slo_target,
            slo_objective=slo_objective,
            **kwargs,
        )
        self._services.append(service)
        return service

    # -- lifecycle -------------------------------------------------------

    async def aclose(self) -> None:
        """Close every service this session handed out (async callers)."""
        services, self._services = self._services, []
        for service in services:
            await service.aclose()

    def close(self) -> None:
        """Close every service this session handed out.

        Service teardown is async (worker pools close off-loop), so
        this synchronous wrapper spins a private event loop. Inside a
        running loop, ``await session.aclose()`` instead.
        """
        if not self._services:
            return
        try:
            asyncio.get_running_loop()
        except RuntimeError:
            asyncio.run(self.aclose())
        else:
            raise RuntimeError(
                "Session.close() called inside a running event loop; "
                "use 'await session.aclose()' instead"
            )

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        db = len(self._database) if self._database is not None else None
        epoch = self._ossm.epoch if self._ossm is not None else None
        return (
            f"Session(transactions={db}, "
            f"segments="
            f"{self._ossm.n_segments if self._ossm is not None else None}, "
            f"epoch={epoch}, services={len(self._services)})"
        )
