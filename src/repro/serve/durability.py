"""Durable control plane for the serving gateway: WAL + artifact store.

Everything the multi-tenant gateway knows — which tenants exist, their
quotas, which OSSM epoch each one serves — lived in process memory
until this module existed, so a crash silently lost every tenant.
:class:`TenantStore` makes that state crash-consistent with the same
discipline the checkpoint layer applies to mining state (Grahne & Zhu's
secondary-memory blueprint: disk is a first-class tier, not a cache):

* **artifact directory** — every published map is an
  ``atomic_savez``-written, CRC-verified ``.npz`` under
  ``<state_dir>/artifacts/<tenant>/epoch_NNNNNNNN.npz``; the write is
  temp + fsync + rename, so a crash leaves the old artifact or the new
  one, never a torn hybrid (:mod:`repro.resilience.integrity`);
* **write-ahead log** — control-plane transitions (create / publish /
  delete / quota) are appended to ``<state_dir>/wal.log`` as
  CRC32-framed JSON records (the ``RPCK`` framing of
  :mod:`repro.resilience.checkpoint`, with a ``RPWL`` magic), each
  append flushed and ``fsync``\\ ed before the in-memory swap;
* **ordering** — publish is *artifact-fsync → WAL-append → memory
  swap*. A WAL record therefore always names an artifact that is
  already durable: a crash before the WAL append leaves the tenant on
  the old epoch, a crash after it recovers to the new one, and no
  interleaving can yield a torn epoch (DESIGN.md §16);
* **replay** — :meth:`TenantStore.replay` restores the longest valid
  record prefix. A damaged *final* record is a torn tail from a crash
  mid-append: it is skipped (``serve.wal.torn``), truncated away, and
  recovery proceeds. Damage *followed by* further records cannot be
  produced by an append crash and propagates as the typed
  :class:`~repro.resilience.errors.CorruptArtifact`.

The store knows nothing about registries or services; it persists and
replays plain records. :meth:`repro.serve.tenants.TenantRegistry.recover`
folds a replay back into live tenants.

Operator-facing extras: ``<state_dir>/quotas.json`` may hold
per-tenant quota overrides (``{"tenant": {"rate": ..., "burst": ...,
"max_pending_share": ...}}``); the CLI re-reads it on SIGHUP without
dropping connections.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Any, Mapping

from ..core.ossm import OSSM
from ..obs.log import get_logger
from ..obs.metrics import get_registry
from ..resilience.errors import CorruptArtifact
from ..resilience.faults import get_injector

__all__ = ["RecoveredTenant", "TenantStore", "WAL_VERSION"]

logger = get_logger(__name__)

#: WAL record format version; replay refuses newer.
WAL_VERSION = 1

_MAGIC = b"RPWL"
_HEADER = struct.Struct(">IQ")  # crc32, payload length
_PREFIX = len(_MAGIC) + 1 + _HEADER.size

#: Control-plane operations a WAL record may carry.
_OPS = frozenset({"create", "publish", "delete", "quota"})

#: Keys a serialized quota may carry (mirrors TenantQuota's fields).
_QUOTA_KEYS = frozenset({"rate", "burst", "max_pending_share"})


@dataclass(frozen=True)
class RecoveredTenant:
    """One tenant's control-plane state as folded from a WAL replay.

    ``quota`` is the raw serialized mapping (or ``None`` for the
    registry default) — the registry side turns it back into a
    :class:`~repro.serve.tenants.TenantQuota`; keeping it plain here
    lets the store stay ignorant of the serving layer.
    """

    name: str
    epoch: int
    artifact: str
    quota: dict[str, Any] | None = None


class TenantStore:
    """Crash-consistent on-disk home of the gateway control plane.

    Parameters
    ----------
    root:
        The state directory (created if missing). Layout::

            <root>/wal.log            append-only control-plane log
            <root>/artifacts/<t>/...  per-(tenant, epoch) .npz maps
            <root>/quotas.json        optional operator quota overrides

    fsync:
        When True (the default, and what every production caller
        wants), each WAL append is flushed and ``fsync``\\ ed before
        returning. False exists only for benchmarks that want to price
        the fsync itself.
    """

    def __init__(self, root: str | os.PathLike, *, fsync: bool = True) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.artifacts_dir = self.root.joinpath("artifacts")
        self.artifacts_dir.mkdir(exist_ok=True)
        self.wal_path = self.root.joinpath("wal.log")
        self.quotas_path = self.root.joinpath("quotas.json")
        self._fsync = bool(fsync)
        self._handle: IO[bytes] | None = None
        self._lock = threading.Lock()
        self._closed = False

    # -- WAL: appending ---------------------------------------------------

    def _frame(self, record: Mapping[str, Any]) -> bytes:
        payload = json.dumps(
            dict(record), sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        return (
            _MAGIC
            + bytes([WAL_VERSION])
            + _HEADER.pack(zlib.crc32(payload), len(payload))
            + payload
        )

    def append(self, record: Mapping[str, Any]) -> None:
        """Append one framed *record*, flushed and fsynced, atomically
        with respect to this store's other appenders.

        Under an active fault plan the frame is written in two halves
        with the first half already durable and a
        ``serve.wal.mid_append`` sleep between them, so the chaos
        harness can SIGKILL the process while a torn record sits on
        disk — the exact state a real crash mid-append leaves.
        """
        op = record.get("op")
        if op not in _OPS:
            raise ValueError(f"unknown WAL op {op!r}")
        blob = self._frame(record)
        injector = get_injector()
        with self._lock:
            if self._closed:
                raise ValueError("tenant store is closed")
            if self._handle is None:
                self._handle = open(self.wal_path, "ab")
            handle = self._handle
            if injector.enabled:
                half = max(1, len(blob) // 2)
                handle.write(blob[:half])
                handle.flush()
                os.fsync(handle.fileno())
                injector.maybe_sleep("serve.wal.mid_append")
                handle.write(blob[half:])
            else:
                handle.write(blob)
            handle.flush()
            if self._fsync:
                os.fsync(handle.fileno())
        metrics = get_registry()
        if metrics.enabled:
            metrics.inc("serve.wal.appends")
            metrics.inc("serve.wal.bytes", len(blob))

    def record_create(
        self,
        name: str,
        epoch: int,
        artifact: str,
        quota: Mapping[str, Any] | None = None,
    ) -> None:
        """Log that *name* now exists, serving *artifact* at *epoch*."""
        record: dict[str, Any] = {
            "op": "create", "tenant": name,
            "epoch": int(epoch), "artifact": artifact,
        }
        if quota is not None:
            record["quota"] = dict(quota)
        self.append(record)

    def record_publish(self, name: str, epoch: int, artifact: str) -> None:
        """Log that *name* advanced to *epoch*, serving *artifact*."""
        self.append({
            "op": "publish", "tenant": name,
            "epoch": int(epoch), "artifact": artifact,
        })

    def record_delete(self, name: str) -> None:
        """Log that *name* was torn down (a tombstone; replay honors it)."""
        self.append({"op": "delete", "tenant": name})

    def record_quota(self, name: str, quota: Mapping[str, Any]) -> None:
        """Log a quota change for *name* so recovery restores it."""
        self.append({"op": "quota", "tenant": name, "quota": dict(quota)})

    # -- WAL: replay ------------------------------------------------------

    def replay(self) -> list[dict[str, Any]]:
        """The longest valid record prefix of the WAL, in append order.

        A damaged final record (truncated frame, failed CRC, garbled
        payload) is the signature of a crash mid-append: it is counted
        (``serve.wal.torn``), logged, truncated off the file so later
        appends extend a clean log, and replay succeeds with the
        records before it. Damage with valid data *after* it cannot
        come from an append crash and raises
        :class:`~repro.resilience.errors.CorruptArtifact`.
        """
        try:
            data = self.wal_path.read_bytes()
        except FileNotFoundError:
            return []
        records: list[dict[str, Any]] = []
        offset = 0
        size = len(data)
        torn: str | None = None
        while offset < size:
            if size - offset < _PREFIX:
                torn = "truncated frame header"
                break
            if data[offset:offset + len(_MAGIC)] != _MAGIC:
                raise CorruptArtifact(
                    self.wal_path,
                    f"bad record magic at byte {offset}",
                )
            version = data[offset + len(_MAGIC)]
            if version > WAL_VERSION:
                raise CorruptArtifact(
                    self.wal_path,
                    f"WAL record version {version} is newer than "
                    f"{WAL_VERSION}",
                )
            crc, length = _HEADER.unpack_from(
                data, offset + len(_MAGIC) + 1
            )
            end = offset + _PREFIX + length
            if end > size:
                torn = (
                    f"truncated payload ({size - offset - _PREFIX}"
                    f"/{length} bytes)"
                )
                break
            payload = data[offset + _PREFIX:end]
            damage: str | None = None
            record: dict[str, Any] | None = None
            if zlib.crc32(payload) != crc:
                damage = "checksum mismatch"
            else:
                try:
                    record = json.loads(payload.decode("utf-8"))
                except ValueError as exc:
                    damage = f"unparseable payload ({exc})"
            if damage is not None:
                if end >= size:
                    torn = damage
                    break
                raise CorruptArtifact(
                    self.wal_path,
                    f"record at byte {offset}: {damage}",
                )
            if not isinstance(record, dict) or record.get("op") not in _OPS:
                raise CorruptArtifact(
                    self.wal_path,
                    f"record at byte {offset} holds no known op",
                )
            records.append(record)
            offset = end
        if torn is not None:
            self._drop_torn_tail(offset, torn)
        metrics = get_registry()
        if metrics.enabled:
            metrics.inc("serve.wal.records_replayed", len(records))
        return records

    def _drop_torn_tail(self, valid: int, reason: str) -> None:
        """Truncate the WAL back to its *valid* prefix length."""
        logger.warning(
            "dropping torn WAL tail of %s after byte %d (%s)",
            self.wal_path, valid, reason,
        )
        metrics = get_registry()
        if metrics.enabled:
            metrics.inc("serve.wal.torn")
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None
            with open(self.wal_path, "r+b") as handle:
                handle.truncate(valid)
                handle.flush()
                os.fsync(handle.fileno())

    def recovered_tenants(self) -> dict[str, RecoveredTenant]:
        """Fold :meth:`replay` into the per-tenant end state.

        Creates (re)define a tenant, publishes advance its epoch and
        artifact, quota records replace its quota, and deletes remove
        it — a deleted tenant stays deleted until a later create. A
        publish or quota record for a tenant the fold does not know is
        impossible under the artifact-before-WAL ordering and raises
        :class:`~repro.resilience.errors.CorruptArtifact`.
        """
        state: dict[str, RecoveredTenant] = {}
        for record in self.replay():
            op = record["op"]
            name = str(record.get("tenant", ""))
            if op == "create":
                state[name] = RecoveredTenant(
                    name=name,
                    epoch=int(record["epoch"]),
                    artifact=str(record["artifact"]),
                    quota=self._valid_quota(record.get("quota")),
                )
            elif op == "delete":
                state.pop(name, None)
            elif name not in state:
                raise CorruptArtifact(
                    self.wal_path,
                    f"{op!r} record for unknown tenant {name!r}",
                )
            elif op == "publish":
                previous = state[name]
                epoch = int(record["epoch"])
                if epoch <= previous.epoch:
                    raise CorruptArtifact(
                        self.wal_path,
                        f"epoch moved backwards for tenant {name!r} "
                        f"({previous.epoch} -> {epoch})",
                    )
                state[name] = RecoveredTenant(
                    name=name,
                    epoch=epoch,
                    artifact=str(record["artifact"]),
                    quota=previous.quota,
                )
            else:  # op == "quota"
                previous = state[name]
                state[name] = RecoveredTenant(
                    name=name,
                    epoch=previous.epoch,
                    artifact=previous.artifact,
                    quota=self._valid_quota(record.get("quota")),
                )
        return state

    def _valid_quota(self, quota: Any) -> dict[str, Any] | None:
        if quota is None:
            return None
        if not isinstance(quota, dict) or not set(quota) <= _QUOTA_KEYS:
            raise CorruptArtifact(
                self.wal_path, f"malformed quota record {quota!r}"
            )
        return quota

    # -- artifacts --------------------------------------------------------

    def artifact_path(self, relpath: str) -> Path:
        """Absolute path of a WAL-recorded artifact, confinement-checked."""
        path = self.artifacts_dir.joinpath(relpath)
        resolved = path.resolve()
        if not resolved.is_relative_to(self.artifacts_dir.resolve()):
            raise CorruptArtifact(
                self.wal_path,
                f"artifact path {relpath!r} escapes the store",
            )
        return path

    def save_artifact(self, name: str, ossm: OSSM) -> str:
        """Durably publish *ossm* for tenant *name*; the WAL-able relpath.

        Goes through :meth:`OSSM.save` (atomic temp + fsync + rename
        with an embedded kind tag and CRC), so the artifact named by a
        subsequent WAL record is durable and verifiable before the
        record exists.
        """
        relpath = os.path.join(name, f"epoch_{ossm.epoch:08d}.npz")
        final = self.artifacts_dir.joinpath(relpath)
        final.parent.mkdir(parents=True, exist_ok=True)
        ossm.save(final)
        return relpath

    def load_artifact(self, relpath: str) -> OSSM:
        """Load and verify a WAL-recorded artifact back into an OSSM.

        A WAL record only ever names an artifact that was fsynced
        before the record existed (the §16 ordering), so a missing
        file is not a benign race — it is reported as the same typed
        :class:`~repro.resilience.errors.CorruptArtifact` a damaged
        one would be.
        """
        path = self.artifact_path(relpath)
        try:
            return OSSM.load(path)
        except FileNotFoundError:
            raise CorruptArtifact(
                path, "artifact named by the WAL is missing"
            ) from None

    def drop_artifacts(self, name: str) -> None:
        """Best-effort removal of a deleted tenant's artifact files.

        Runs *after* the delete tombstone is durable — a crash part-way
        leaves orphaned files that replay already ignores, never a
        live tenant with missing maps.
        """
        directory = self.artifacts_dir.joinpath(name)
        if not directory.is_dir():
            return
        left_behind: list[str] = []
        for path in sorted(directory.glob("*.npz")):
            try:
                path.unlink()
            except OSError as exc:
                left_behind.append(f"{path}: {exc}")
        if left_behind:
            logger.warning(
                "leaving artifact(s) behind: %s", "; ".join(left_behind)
            )
        try:
            directory.rmdir()
        except OSError:
            pass

    def sweep_temp_files(self) -> int:
        """Remove stray ``.tmp`` files a SIGKILL mid-publish left behind.

        ``atomic_path`` cleans up after *exceptions*; only a hard kill
        between temp-write and rename can orphan one. They are never
        referenced by any WAL record, so removal is always safe.
        """
        swept = 0
        unswept: list[str] = []
        for path in self.artifacts_dir.rglob("*.tmp"):
            try:
                path.unlink()
                swept += 1
            except OSError as exc:
                unswept.append(f"{path}: {exc}")
        if unswept:
            logger.warning(
                "could not sweep temp file(s): %s", "; ".join(unswept)
            )
        if swept:
            logger.warning(
                "swept %d torn temp artifact(s) under %s",
                swept, self.artifacts_dir,
            )
        return swept

    # -- operator overrides ----------------------------------------------

    def quota_overrides(self) -> dict[str, dict[str, Any]]:
        """Per-tenant quota overrides from ``quotas.json`` (may be empty).

        Raises :class:`ValueError` on an unreadable or malformed file —
        the SIGHUP path turns that into a warning instead of applying a
        half-parsed policy.
        """
        try:
            text = self.quotas_path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return {}
        try:
            raw = json.loads(text)
        except ValueError as exc:
            raise ValueError(
                f"unparseable quota overrides {self.quotas_path}: {exc}"
            ) from None
        if not isinstance(raw, dict):
            raise ValueError(
                f"quota overrides {self.quotas_path} must be a JSON "
                "object of tenant -> quota"
            )
        overrides: dict[str, dict[str, Any]] = {}
        for name, quota in raw.items():
            if not isinstance(quota, dict) or not set(quota) <= _QUOTA_KEYS:
                raise ValueError(
                    f"quota override for tenant {name!r} must be an "
                    f"object with keys from {sorted(_QUOTA_KEYS)}"
                )
            overrides[str(name)] = quota
        return overrides

    # -- lifecycle --------------------------------------------------------

    def flush(self) -> None:
        """Flush and fsync any buffered WAL bytes."""
        with self._lock:
            if self._handle is not None:
                self._handle.flush()
                os.fsync(self._handle.fileno())

    def close(self) -> None:
        """Flush, fsync, and close the WAL handle; idempotent."""
        with self._lock:
            handle = self._handle
            self._handle = None
            self._closed = True
            if handle is not None:
                handle.flush()
                os.fsync(handle.fileno())
                handle.close()

    def __enter__(self) -> "TenantStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"TenantStore({str(self.root)!r})"
