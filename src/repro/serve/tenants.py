"""Multi-tenant registry: named bound-query services with quotas.

One box serves many tenants, each with its own OSSM, its own
:class:`~repro.serve.service.BoundQueryService` (cache, coalescing,
back-pressure, breaker), its own admission-controlled batch scheduler
(:class:`~repro.serve.admission.BatchScheduler`), and its own quota.
:class:`TenantRegistry` owns the mapping and the two cross-tenant
invariants:

* **isolation** — a tenant can exhaust only its *own* budget: its
  token bucket (:class:`TokenBucket`) sheds excess queries with a
  :class:`~repro.serve.errors.QuotaExceeded` (HTTP 429) and its
  pending-set share is a fixed fraction of the registry-wide budget,
  so a flooding tenant cannot starve the others' event-loop admission
  (DESIGN.md §15 states the argument);
* **epoch publish** — :meth:`TenantRegistry.publish` swaps a tenant's
  map behind a strictly advancing epoch: the uploaded artifact is
  re-tagged to ``current_epoch + 1`` when needed, so the service's
  epoch-tagged cache invalidates wholesale and in-flight queries
  finish against the map they started with (the §10 argument, lifted
  per tenant).

The registry is synchronous (plain dict under a lock, no awaits while
held) so it can be driven from the event loop and from synchronous
callers (:class:`~repro.session.Session`, tests) alike.
"""

from __future__ import annotations

import re
import threading
import time
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass
from typing import Any

from ..core.ossm import OSSM
from ..obs.log import get_logger
from ..obs.metrics import get_registry
from ..resilience.errors import CorruptArtifact
from ..resilience.faults import get_injector
from .admission import BatchScheduler
from .durability import TenantStore
from .errors import InvalidRequest, UnknownTenant
from .service import BoundQueryService

__all__ = [
    "Tenant",
    "TenantQuota",
    "TenantRegistry",
    "TokenBucket",
    "validate_tenant_name",
]

logger = get_logger(__name__)

#: Tenant names double as URL path segments and metric-name components,
#: so they are restricted to a filesystem/Prometheus-safe alphabet.
_TENANT_NAME = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$")


def validate_tenant_name(name: str) -> str:
    """Return *name* if it is a legal tenant name, else reject.

    Raises :class:`InvalidRequest` (HTTP 400) — a malformed name is a
    client error, not a missing tenant.
    """
    if not isinstance(name, str) or not _TENANT_NAME.match(name):
        raise InvalidRequest(
            f"invalid tenant name {name!r}: expected 1-64 characters "
            "from [A-Za-z0-9_.-], starting alphanumeric"
        )
    return name


class TokenBucket:
    """Classic token bucket: sustained *rate* with a *burst* reservoir.

    ``acquire(n)`` is non-blocking: it returns ``0.0`` and debits the
    bucket when the request is admissible now, or the number of
    seconds until it would be — the exact ``Retry-After`` hint.

    A batch larger than the burst reservoir is admitted once the
    reservoir is full (the bucket goes into debt), so the long-run
    rate holds for any batch size instead of large batches being
    unservable forever.

    Parameters
    ----------
    rate:
        Sustained tokens per second (> 0).
    burst:
        Reservoir capacity; defaults to one second's worth of tokens
        (at least 1).
    clock:
        Monotonic time source, injectable for tests.
    """

    def __init__(
        self,
        rate: float,
        burst: float | None = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else max(1.0, rate)
        if self.burst < 1:
            raise ValueError("burst must be >= 1")
        self._clock = clock
        self._tokens = self.burst
        self._stamp = clock()
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        elapsed = now - self._stamp
        if elapsed > 0:
            self._tokens = min(
                self.burst, self._tokens + elapsed * self.rate
            )
        self._stamp = now

    def acquire(self, tokens: int = 1) -> float:
        """Try to spend *tokens*; 0.0 on success, else seconds to wait.

        On rejection nothing is debited — the caller sheds the request
        and the hint tells the client when the same request would be
        admitted.
        """
        if tokens < 1:
            raise ValueError("tokens must be >= 1")
        with self._lock:
            now = self._clock()
            self._refill(now)
            # A batch above the burst size is admissible at full
            # reservoir (and leaves the bucket in debt).  The epsilon
            # keeps the hint honest: a client that waits exactly the
            # returned delay must not be rejected again over float
            # rounding in the refill arithmetic.
            needed = min(float(tokens), self.burst)
            if self._tokens >= needed - 1e-9:
                self._tokens -= float(tokens)
                return 0.0
            return (needed - self._tokens) / self.rate

    @property
    def available(self) -> float:
        """Tokens spendable right now (may be negative while in debt)."""
        with self._lock:
            self._refill(self._clock())
            return self._tokens


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant admission limits.

    Parameters
    ----------
    rate:
        Sustained queries (itemsets) per second admitted through the
        tenant's token bucket; ``None`` = unlimited.
    burst:
        Bucket reservoir; defaults to one second's worth.
    max_pending_share:
        Fraction of the registry-wide pending budget this tenant's
        service may hold in flight — the back-pressure isolation knob.
    """

    rate: float | None = None
    burst: float | None = None
    max_pending_share: float = 1.0

    def __post_init__(self) -> None:
        if self.rate is not None and self.rate <= 0:
            raise ValueError("rate must be positive or None")
        if not 0.0 < self.max_pending_share <= 1.0:
            raise ValueError("max_pending_share must be in (0, 1]")

    def bucket(
        self, clock: Callable[[], float] = time.monotonic
    ) -> TokenBucket | None:
        """A fresh bucket enforcing this quota (None = unlimited)."""
        if self.rate is None:
            return None
        return TokenBucket(self.rate, self.burst, clock=clock)

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly form, round-tripped by :meth:`from_dict`."""
        return {
            "rate": self.rate,
            "burst": self.burst,
            "max_pending_share": self.max_pending_share,
        }

    @classmethod
    def from_dict(cls, raw: dict[str, Any]) -> "TenantQuota":
        """Rebuild a quota from :meth:`to_dict` output (validating)."""
        return cls(**raw)


class Tenant:
    """One tenant's serving stack: service + scheduler + quota.

    Built by :class:`TenantRegistry`; not constructed directly. The
    query path is :meth:`query` / :meth:`query_batch`, which ride the
    tenant's admission scheduler so cross-request candidates coalesce
    into engine-sized batches.
    """

    def __init__(
        self,
        name: str,
        service: BoundQueryService,
        scheduler: BatchScheduler,
        quota: TenantQuota,
    ) -> None:
        self.name = name
        self.service = service
        self.scheduler = scheduler
        self.quota = quota

    @property
    def epoch(self) -> int:
        """Epoch of the map this tenant currently serves."""
        return self.service.epoch

    async def query(self, itemset: Iterable[int]) -> int:
        """Admission-controlled Equation (1) bound for one itemset."""
        bounds = await self.scheduler.submit([itemset])
        return bounds[0]

    async def query_batch(
        self, itemsets: Sequence[Iterable[int]]
    ) -> list[int]:
        """Admission-controlled bounds, aligned with the input order."""
        return await self.scheduler.submit(itemsets)

    def stats(self) -> dict[str, Any]:
        """JSON-friendly snapshot: service stats + admission counters.

        Key names follow the one canonical style (snake_case, units
        suffixed) shared by ``BoundQueryService.stats()`` and the
        gateway's ``/stats`` payload — ``tests/serve/test_errors.py``
        pins the convention.
        """
        snapshot = self.service.stats()
        snapshot["tenant"] = self.name
        snapshot["quota"] = {
            "rate": self.quota.rate,
            "burst": (
                self.scheduler.bucket.burst
                if self.scheduler.bucket is not None
                else None
            ),
            "max_pending_share": self.quota.max_pending_share,
        }
        snapshot["admission"] = self.scheduler.stats()
        return snapshot

    async def aclose(self) -> None:
        """Drain the scheduler, then the service."""
        await self.scheduler.aclose()
        await self.service.aclose()


class TenantRegistry:
    """Named tenants, each serving its own epoch-versioned OSSM.

    Parameters
    ----------
    max_pending_total:
        Registry-wide in-flight budget; each tenant's service gets
        ``max_pending_share × max_pending_total`` of it.
    default_quota:
        Quota applied when :meth:`create` is not given one.
    workers / cache_size / timeout / slo_target / slo_objective:
        Defaults forwarded to every tenant's
        :class:`~repro.serve.service.BoundQueryService` (same names as
        its constructor).
    max_batch / linger:
        Defaults forwarded to every tenant's
        :class:`~repro.serve.admission.BatchScheduler`.
    clock:
        Monotonic time source for quota buckets, injectable for tests.
    store:
        Optional :class:`~repro.serve.durability.TenantStore`. When
        set, every control-plane transition is made durable *before*
        the in-memory swap (artifact-fsync → WAL-append → swap,
        DESIGN.md §16) and :meth:`recover` can rebuild the registry
        after a crash. When ``None`` the registry is purely in-memory,
        exactly as before.
    """

    def __init__(
        self,
        *,
        max_pending_total: int = 4096,
        default_quota: TenantQuota | None = None,
        workers: int | None = None,
        cache_size: int = 4096,
        timeout: float | None = None,
        slo_target: float | None = None,
        slo_objective: float = 0.99,
        max_batch: int = 512,
        linger: float = 0.002,
        clock: Callable[[], float] = time.monotonic,
        store: TenantStore | None = None,
    ) -> None:
        if max_pending_total < 1:
            raise ValueError("max_pending_total must be >= 1")
        self.max_pending_total = int(max_pending_total)
        self.default_quota = default_quota or TenantQuota()
        self.workers = workers
        self.cache_size = int(cache_size)
        self.timeout = timeout
        self.slo_target = slo_target
        self.slo_objective = float(slo_objective)
        self.max_batch = int(max_batch)
        self.linger = float(linger)
        self._clock = clock
        self.store = store
        self._tenants: dict[str, Tenant] = {}
        self._lock = threading.Lock()
        self._closed = False

    # -- lifecycle -------------------------------------------------------

    def _build_tenant(
        self,
        name: str,
        ossm: OSSM,
        quota: TenantQuota,
        cache_size: int | None,
        workers: int | None,
    ) -> Tenant:
        """Assemble a tenant's serving stack (no registration, no WAL)."""
        max_pending = max(
            1, int(quota.max_pending_share * self.max_pending_total)
        )
        service = BoundQueryService(
            ossm,
            cache_size=self.cache_size if cache_size is None else cache_size,
            max_pending=max_pending,
            timeout=self.timeout,
            workers=self.workers if workers is None else workers,
            slo_target=self.slo_target,
            slo_objective=self.slo_objective,
        )
        scheduler = BatchScheduler(
            service,
            max_batch=self.max_batch,
            linger=self.linger,
            bucket=quota.bucket(self._clock),
            tenant=name,
        )
        return Tenant(name, service, scheduler, quota)

    def _install(self, tenant: Tenant) -> None:
        """Register an assembled tenant, rejecting duplicates."""
        with self._lock:
            if self._closed:
                raise InvalidRequest("tenant registry is closed")
            if tenant.name in self._tenants:
                raise InvalidRequest(
                    f"tenant {tenant.name!r} already exists; PUT a new "
                    "map to replace what it serves"
                )
            self._tenants[tenant.name] = tenant
        metrics = get_registry()
        if metrics.enabled:
            metrics.inc("serve.tenant.created")
            metrics.set_gauge("serve.tenants", len(self._tenants))

    def create(
        self,
        name: str,
        ossm: OSSM,
        *,
        quota: TenantQuota | None = None,
        cache_size: int | None = None,
        workers: int | None = None,
    ) -> Tenant:
        """Provision *name* serving *ossm*; rejects duplicates.

        Raises :class:`InvalidRequest` on a malformed name or a name
        already registered (replace a live tenant's map with
        :meth:`publish`, not by re-creating it). With a store attached
        the artifact and the WAL create record are durable before the
        tenant becomes visible.
        """
        validate_tenant_name(name)
        quota = quota or self.default_quota
        if name in self._tenants:
            raise InvalidRequest(
                f"tenant {name!r} already exists; PUT a new map to "
                "replace what it serves"
            )
        tenant = self._build_tenant(name, ossm, quota, cache_size, workers)
        if self.store is not None:
            relpath = self.store.save_artifact(name, ossm)
            self.store.record_create(
                name, ossm.epoch, relpath, quota=quota.to_dict()
            )
        self._install(tenant)
        logger.info(
            "tenant %r created at epoch %d (%d segments, %d items)",
            name, ossm.epoch, ossm.n_segments, ossm.n_items,
        )
        return tenant

    def publish(self, name: str, ossm: OSSM) -> int:
        """Hot-swap *name*'s map behind a strictly advancing epoch.

        The uploaded map's own epoch is advisory: when it does not
        exceed the serving epoch (the common case — artifacts are
        usually saved at epoch 0), the map is re-tagged to
        ``serving_epoch + 1`` so the swap always invalidates the
        tenant's bound cache. In-flight queries finish against the map
        they started with (DESIGN.md §15). Returns the new epoch.

        With a store attached the order is artifact-fsync →
        WAL-append → in-memory swap: a crash at any point leaves the
        tenant serving exactly the old or the new epoch (§16).
        """
        tenant = self.get(name)
        current = tenant.service.epoch
        if ossm.epoch <= current:
            ossm = OSSM(
                ossm.matrix,
                segment_sizes=ossm.segment_sizes,
                epoch=current + 1,
            )
        if self.store is not None:
            relpath = self.store.save_artifact(name, ossm)
            injector = get_injector()
            if injector.enabled:
                # Chaos window: the artifact is durable, the WAL
                # record is not — a kill here must recover to the OLD
                # epoch.
                injector.maybe_sleep("serve.publish.pre_wal")
            self.store.record_publish(name, ossm.epoch, relpath)
        tenant.service.update(ossm)
        metrics = get_registry()
        if metrics.enabled:
            metrics.inc("serve.tenant.published")
        logger.info("tenant %r now at epoch %d", name, ossm.epoch)
        return ossm.epoch

    async def remove(self, name: str) -> None:
        """Tear down *name*: drain its scheduler and close its service.

        With a store attached the delete tombstone is WAL-durable
        before the tenant disappears from memory, so a DELETEd tenant
        stays deleted across restarts; its artifact files are removed
        best-effort afterwards (orphans are ignored by replay).
        """
        with self._lock:
            if name not in self._tenants:
                raise UnknownTenant(name)
            if self.store is not None:
                self.store.record_delete(name)
            tenant = self._tenants.pop(name)
        await tenant.aclose()
        if self.store is not None:
            self.store.drop_artifacts(name)
        metrics = get_registry()
        if metrics.enabled:
            metrics.inc("serve.tenant.removed")
            metrics.set_gauge("serve.tenants", len(self._tenants))

    @classmethod
    def recover(cls, store: TenantStore, **kwargs: Any) -> "TenantRegistry":
        """Rebuild a registry from *store*'s WAL and artifact directory.

        Replays the control-plane log (a torn tail from a crash
        mid-append is dropped; real corruption raises
        :class:`~repro.resilience.errors.CorruptArtifact`), reloads
        each surviving tenant's artifact through the CRC-verified
        loader, checks the artifact's epoch against the WAL's, and
        re-applies ``quotas.json`` overrides. ``kwargs`` are the
        normal registry constructor arguments.
        """
        started = time.monotonic()
        store.sweep_temp_files()
        registry = cls(store=store, **kwargs)
        for name, state in sorted(store.recovered_tenants().items()):
            ossm = store.load_artifact(state.artifact)
            if ossm.epoch != state.epoch:
                raise CorruptArtifact(
                    store.artifact_path(state.artifact),
                    f"artifact epoch {ossm.epoch} does not match WAL "
                    f"epoch {state.epoch} for tenant {name!r}",
                )
            quota = (
                TenantQuota.from_dict(state.quota)
                if state.quota is not None
                else registry.default_quota
            )
            registry._install(
                registry._build_tenant(name, ossm, quota, None, None)
            )
            metrics = get_registry()
            if metrics.enabled:
                metrics.inc("serve.tenant.restored")
        try:
            registry.apply_quota_overrides()
        except ValueError as exc:
            logger.warning("ignoring quota overrides at boot: %s", exc)
        elapsed = time.monotonic() - started
        metrics = get_registry()
        if metrics.enabled:
            metrics.observe("serve.recovery.seconds", elapsed)
            metrics.set_gauge("serve.recovery.tenants", len(registry))
        logger.info(
            "recovered %d tenant(s) from %s in %.3fs",
            len(registry), store.root, elapsed,
        )
        return registry

    # -- quota management -------------------------------------------------

    def set_quota(
        self, name: str, quota: TenantQuota, *, persist: bool = True
    ) -> None:
        """Replace *name*'s quota on the live tenant, without a drop.

        The token bucket is swapped and the service's pending budget
        resized in place; queued and in-flight queries are untouched.
        With a store attached and ``persist=True`` the change is
        WAL-logged first so recovery restores it.
        """
        tenant = self.get(name)
        if persist and self.store is not None:
            self.store.record_quota(name, quota.to_dict())
        tenant.quota = quota
        tenant.scheduler.bucket = quota.bucket(self._clock)
        tenant.service.max_pending = max(
            1, int(quota.max_pending_share * self.max_pending_total)
        )
        logger.info(
            "tenant %r quota now rate=%s burst=%s max_pending_share=%s",
            name, quota.rate, quota.burst, quota.max_pending_share,
        )

    def apply_quota_overrides(self) -> int:
        """Re-read ``quotas.json`` overrides; how many were applied.

        Invalid per-tenant entries and overrides for unknown tenants
        are warned about and skipped — a SIGHUP must never take the
        gateway down. An unreadable file propagates as ``ValueError``
        for the caller to warn about. No-op without a store.
        """
        if self.store is None:
            return 0
        applied = 0
        unknown: list[str] = []
        invalid: list[str] = []
        for name, raw in sorted(self.store.quota_overrides().items()):
            if name not in self._tenants:
                unknown.append(name)
                continue
            try:
                quota = TenantQuota.from_dict(raw)
            except (TypeError, ValueError) as exc:
                invalid.append(f"{name!r}: {exc}")
                continue
            self.set_quota(name, quota, persist=False)
            applied += 1
        if unknown:
            logger.warning(
                "quota overrides for unknown tenant(s) ignored: %s",
                ", ".join(repr(name) for name in unknown),
            )
        if invalid:
            logger.warning(
                "invalid quota override(s) skipped: %s", "; ".join(invalid)
            )
        return applied

    async def aclose(self) -> None:
        """Close every tenant; the registry accepts no more creates."""
        with self._lock:
            self._closed = True
            tenants = list(self._tenants.values())
            self._tenants.clear()
        for tenant in tenants:
            await tenant.aclose()
        if self.store is not None:
            self.store.close()

    async def __aenter__(self) -> "TenantRegistry":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.aclose()

    # -- lookup ----------------------------------------------------------

    def get(self, name: str) -> Tenant:
        """The tenant registered under *name* (404 when absent)."""
        tenant = self._tenants.get(name)
        if tenant is None:
            raise UnknownTenant(name)
        return tenant

    def __contains__(self, name: str) -> bool:
        return name in self._tenants

    def __len__(self) -> int:
        return len(self._tenants)

    def names(self) -> list[str]:
        """Registered tenant names, sorted."""
        return sorted(self._tenants)

    def stats(self) -> dict[str, Any]:
        """Registry-wide snapshot: per-tenant stats plus the totals."""
        with self._lock:
            tenants = dict(self._tenants)
        return {
            "tenants": {
                name: tenant.stats() for name, tenant in tenants.items()
            },
            "tenant_count": len(tenants),
            "max_pending_total": self.max_pending_total,
        }
