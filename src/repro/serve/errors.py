"""Typed errors of the online bound-serving plane.

All service failures derive from :class:`ServeError` so callers can
catch the family with one clause while still telling overload apart
from timeout — the two need opposite client reactions (back off
vs. retry elsewhere).

Every subclass carries the two attributes the HTTP edge needs to map
it *mechanically* (no ``isinstance`` ladders, no string matching on
type names):

* :attr:`ServeError.status_code` — the HTTP status the error
  translates to (class attribute; instances may override);
* :attr:`ServeError.retry_after` — seconds after which a retry is
  reasonable, or ``None`` when retrying does not help. The gateway
  renders it both in the JSON body and as a ``Retry-After`` header.

A third-party ``ServeError`` subclass that sets these two attributes
is served by the gateway exactly like the built-in ones.
"""

from __future__ import annotations

__all__ = [
    "Draining",
    "InvalidRequest",
    "Overloaded",
    "QueryTimeout",
    "QuotaExceeded",
    "ServeError",
    "ServiceClosed",
    "UnknownTenant",
]


class ServeError(RuntimeError):
    """Base class of every bound-serving failure.

    Subclasses override :attr:`status_code` (and set
    :attr:`retry_after` per instance when a retry hint exists); the
    HTTP edge reads both attributes instead of inspecting types.
    """

    #: HTTP status the gateway answers with for this error family.
    status_code: int = 500

    #: Seconds until a retry is worthwhile, or ``None`` (no hint).
    retry_after: float | None = None


class InvalidRequest(ServeError):
    """The request is malformed: bad JSON, bad itemset, bad tenant name.

    Retrying the identical request can only fail the identical way, so
    no ``retry_after`` hint is attached.
    """

    status_code = 400


class UnknownTenant(ServeError):
    """No tenant is registered under the requested name."""

    status_code = 404

    def __init__(self, tenant: str) -> None:
        super().__init__(f"unknown tenant {tenant!r}")
        self.tenant = tenant


class Overloaded(ServeError):
    """The request was shed: admitting it would exceed ``max_pending``.

    Load shedding is deliberate back-pressure — the service rejects at
    the door rather than queueing unboundedly. Clients should back off
    and retry; the request had no side effects.
    """

    status_code = 503

    def __init__(
        self,
        pending: int,
        max_pending: int,
        retry_after: float | None = 0.05,
    ) -> None:
        super().__init__(
            f"service overloaded: {pending} itemsets pending "
            f"(max_pending={max_pending})"
        )
        self.pending = pending
        self.max_pending = max_pending
        self.retry_after = retry_after


class QuotaExceeded(Overloaded):
    """The tenant spent its admission quota (token bucket empty).

    A quota rejection is still back-pressure, but *per tenant* and
    *expected*: the bucket refills at the configured rate, so the
    ``retry_after`` hint is exact, not heuristic. HTTP maps it to 429
    (the shared-overload :class:`Overloaded` stays 503) so clients can
    tell "slow down, you specifically" from "the box is busy".
    """

    status_code = 429

    def __init__(self, tenant: str, retry_after: float) -> None:
        # Skip Overloaded.__init__: the message and fields differ.
        ServeError.__init__(
            self,
            f"tenant {tenant!r} exceeded its query quota; "
            f"retry in {retry_after:.3f}s",
        )
        self.tenant = tenant
        self.retry_after = float(retry_after)


class QueryTimeout(ServeError):
    """The per-request timeout elapsed before the bound was computed.

    The underlying evaluation is *not* cancelled — coalesced waiters
    may still be counting on it, and its result still warms the cache.
    """

    status_code = 504

    def __init__(self, timeout: float) -> None:
        super().__init__(f"bound query timed out after {timeout:.3f}s")
        self.timeout = timeout


class ServiceClosed(ServeError):
    """The service was asked for work after :meth:`aclose`."""

    status_code = 503

    def __init__(self, what: str = "bound-query service") -> None:
        super().__init__(f"{what} is closed")


class Draining(ServeError):
    """The gateway is shutting down gracefully and sheds new work.

    Raised for requests arriving after SIGTERM flipped ``/ready`` to
    503 but before the drain deadline closed the listener. In-flight
    requests still complete; the client should retry against another
    replica (load balancers watching ``/ready`` stop routing here
    within one probe interval, hence the short hint).
    """

    status_code = 503

    def __init__(self, retry_after: float = 1.0) -> None:
        super().__init__("gateway is draining; retry against a peer")
        self.retry_after = float(retry_after)
