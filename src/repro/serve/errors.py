"""Typed errors of the online bound-query service.

All service failures derive from :class:`ServeError` so callers can
catch the family with one clause while still telling overload apart
from timeout — the two need opposite client reactions (back off
vs. retry elsewhere).
"""

from __future__ import annotations

__all__ = ["ServeError", "Overloaded", "QueryTimeout", "ServiceClosed"]


class ServeError(RuntimeError):
    """Base class of every bound-query-service failure."""


class Overloaded(ServeError):
    """The request was shed: admitting it would exceed ``max_pending``.

    Load shedding is deliberate back-pressure — the service rejects at
    the door rather than queueing unboundedly. Clients should back off
    and retry; the request had no side effects.
    """

    def __init__(self, pending: int, max_pending: int) -> None:
        super().__init__(
            f"service overloaded: {pending} itemsets pending "
            f"(max_pending={max_pending})"
        )
        self.pending = pending
        self.max_pending = max_pending


class QueryTimeout(ServeError):
    """The per-request timeout elapsed before the bound was computed.

    The underlying evaluation is *not* cancelled — coalesced waiters
    may still be counting on it, and its result still warms the cache.
    """

    def __init__(self, timeout: float) -> None:
        super().__init__(f"bound query timed out after {timeout:.3f}s")
        self.timeout = timeout


class ServiceClosed(ServeError):
    """The service was asked for work after :meth:`aclose`."""

    def __init__(self) -> None:
        super().__init__("bound-query service is closed")
