"""Online bound-query serving layer.

Answers Equation (1) upper-bound queries over a live OSSM as an
asyncio service: epoch-tagged caching, duplicate coalescing,
back-pressure, timeouts, and parallel batch evaluation with serial
fallback. See DESIGN.md §10 for the epoch/invalidation correctness
argument and ``repro-ossm serve`` for the CLI front end.

* :class:`~repro.serve.service.BoundQueryService` — the service.
* :class:`~repro.serve.cache.EpochLRUCache` — the bound cache.
* :mod:`repro.serve.errors` — :class:`Overloaded`,
  :class:`QueryTimeout`, :class:`ServiceClosed`.
"""

from .cache import CacheStats, EpochLRUCache
from .errors import Overloaded, QueryTimeout, ServeError, ServiceClosed
from .service import BoundQueryService, canonical_itemset

__all__ = [
    "BoundQueryService",
    "CacheStats",
    "EpochLRUCache",
    "Overloaded",
    "QueryTimeout",
    "ServeError",
    "ServiceClosed",
    "canonical_itemset",
]
