"""Online bound-query serving layer.

Answers Equation (1) upper-bound queries over live OSSMs as an asyncio
service plane: epoch-tagged caching, duplicate coalescing,
back-pressure, timeouts, parallel batch evaluation with serial
fallback — and, above the single-map service, the multi-tenant HTTP
gateway. See DESIGN.md §10 for the epoch/invalidation correctness
argument, §15 for tenant isolation, and ``repro-ossm serve`` for the
CLI front end.

* :class:`~repro.serve.service.BoundQueryService` — one map's service.
* :class:`~repro.serve.cache.EpochLRUCache` — the bound cache.
* :class:`~repro.serve.tenants.TenantRegistry` /
  :class:`~repro.serve.tenants.Tenant` — named services with
  per-tenant quotas (:class:`~repro.serve.tenants.TenantQuota`,
  :class:`~repro.serve.tenants.TokenBucket`).
* :class:`~repro.serve.admission.BatchScheduler` — per-tenant quota
  gate + cross-request batch coalescing.
* :class:`~repro.serve.gateway.Gateway` — the stdlib-asyncio HTTP
  edge (``/v1/tenants/...``), with ``/ready``-vs-``/health`` graceful
  drain.
* :class:`~repro.serve.durability.TenantStore` — the crash-consistent
  control plane: CRC-framed write-ahead log + atomic artifact
  directory behind ``TenantRegistry.recover`` (DESIGN.md §16).
* :mod:`repro.serve.errors` — typed failures carrying
  ``status_code``/``retry_after`` for mechanical HTTP mapping.
"""

from .admission import BatchScheduler
from .cache import CacheStats, EpochLRUCache
from .durability import RecoveredTenant, TenantStore
from .errors import (
    Draining,
    InvalidRequest,
    Overloaded,
    QueryTimeout,
    QuotaExceeded,
    ServeError,
    ServiceClosed,
    UnknownTenant,
)
from .gateway import Gateway
from .service import BoundQueryService, canonical_itemset
from .tenants import Tenant, TenantQuota, TenantRegistry, TokenBucket

__all__ = [
    "BatchScheduler",
    "BoundQueryService",
    "CacheStats",
    "Draining",
    "EpochLRUCache",
    "Gateway",
    "InvalidRequest",
    "Overloaded",
    "QueryTimeout",
    "QuotaExceeded",
    "RecoveredTenant",
    "ServeError",
    "ServiceClosed",
    "Tenant",
    "TenantQuota",
    "TenantRegistry",
    "TenantStore",
    "TokenBucket",
    "UnknownTenant",
    "canonical_itemset",
]
