"""Admission control: per-tenant quota + cross-request batch coalescing.

:class:`BatchScheduler` sits between a tenant's public query surface
and its :class:`~repro.serve.service.BoundQueryService`. It does two
things the service deliberately does not:

* **quota** — each submission first passes the tenant's token bucket;
  a submission past the sustained rate is shed *before* it touches the
  service, with :class:`~repro.serve.errors.QuotaExceeded` carrying
  the bucket's exact refill time as the ``Retry-After`` hint;
* **coalescing across requests** — admitted itemsets from concurrent
  requests are gathered for a short linger window (default 2 ms) and
  flushed to ``service.query_batch`` as one batch, so a hundred
  single-itemset HTTP requests cost one cache walk and one engine
  fan-out instead of a hundred. The service's own same-key coalescing
  and epoch-tagged cache then apply to the merged batch unchanged.

The scheduler never reorders within a request: every caller gets its
bounds aligned with its own input order, whatever batch they rode in.
"""

from __future__ import annotations

import asyncio
from collections.abc import Iterable, Sequence
from typing import TYPE_CHECKING, Any

from ..obs.log import get_logger
from ..obs.metrics import get_registry
from .errors import QuotaExceeded, ServiceClosed
from .service import BoundQueryService

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .tenants import TokenBucket

__all__ = ["BatchScheduler"]

logger = get_logger(__name__)


class _Pending:
    """One submitted request waiting for its flush."""

    __slots__ = ("itemsets", "future")

    def __init__(
        self,
        itemsets: list[Iterable[int]],
        future: "asyncio.Future[list[int]]",
    ) -> None:
        self.itemsets = itemsets
        self.future = future


class BatchScheduler:
    """Quota gate + linger-window batch coalescer for one tenant.

    Parameters
    ----------
    service:
        The tenant's bound-query service; flushed batches go through
        its ``query_batch`` (back-pressure, cache, breaker included).
    max_batch:
        Largest merged batch per flush; excess requests roll into the
        next flush immediately (no extra linger).
    linger:
        Seconds to hold the first request of a batch open for
        followers. Zero flushes on the next event-loop tick.
    bucket:
        The tenant's quota bucket, or ``None`` for unlimited.
    tenant:
        Tenant name, used in error messages and per-tenant metrics.
    """

    def __init__(
        self,
        service: BoundQueryService,
        *,
        max_batch: int = 512,
        linger: float = 0.002,
        bucket: "TokenBucket | None" = None,
        tenant: str = "default",
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if linger < 0:
            raise ValueError("linger must be >= 0")
        self.service = service
        self.max_batch = int(max_batch)
        self.linger = float(linger)
        self.bucket = bucket
        self.tenant = tenant
        self._queue: list[_Pending] = []
        self._flusher: asyncio.Task[None] | None = None
        self._tasks: set[asyncio.Task[None]] = set()
        self._closed = False
        self._requests = 0
        self._queries = 0
        self._quota_shed = 0
        self._batches = 0
        self._flushed_queries = 0

    # -- submission ------------------------------------------------------

    async def submit(
        self, itemsets: Sequence[Iterable[int]]
    ) -> list[int]:
        """Bounds for *itemsets*, admission-controlled and coalesced.

        Raises :class:`QuotaExceeded` when the tenant's bucket cannot
        fund ``len(itemsets)`` queries right now (nothing is debited),
        :class:`ServiceClosed` after :meth:`aclose`, and whatever the
        underlying flush raised (``Overloaded``, ``QueryTimeout``,
        ``ValueError``) otherwise.
        """
        if self._closed:
            raise ServiceClosed("batch scheduler")
        materialized = list(itemsets)
        self._requests += 1
        self._queries += len(materialized)
        metrics = get_registry()
        if self.bucket is not None and materialized:
            delay = self.bucket.acquire(len(materialized))
            if delay > 0.0:
                self._quota_shed += 1
                if metrics.enabled:
                    metrics.inc(f"serve.tenant.{self.tenant}.quota_shed")
                raise QuotaExceeded(self.tenant, delay)
        if metrics.enabled:
            metrics.inc(f"serve.tenant.{self.tenant}.requests")
            metrics.inc(
                f"serve.tenant.{self.tenant}.queries", len(materialized)
            )
        if not materialized:
            return []
        future: asyncio.Future[list[int]] = (
            asyncio.get_running_loop().create_future()
        )
        self._queue.append(_Pending(materialized, future))
        if self._flusher is None or self._flusher.done():
            task = asyncio.create_task(self._flush_after_linger())
            self._flusher = task
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)
        return await future

    # -- flushing --------------------------------------------------------

    async def _flush_after_linger(self) -> None:
        """Hold the window open for followers, then flush the queue."""
        if self.linger > 0:
            await asyncio.sleep(self.linger)
        else:
            # Yield once so same-tick submitters can still join.
            await asyncio.sleep(0)
        while self._queue:
            batch: list[_Pending] = []
            size = 0
            while self._queue and size < self.max_batch:
                batch.append(self._queue.pop(0))
                size += len(batch[-1].itemsets)
            await self._flush(batch)

    async def _flush(self, batch: list[_Pending]) -> None:
        """Evaluate one merged batch and scatter results to waiters."""
        merged: list[Iterable[int]] = []
        for pending in batch:
            merged.extend(pending.itemsets)
        self._batches += 1
        self._flushed_queries += len(merged)
        try:
            bounds = await self.service.query_batch(merged)
        except BaseException as exc:
            for pending in batch:
                if not pending.future.done():
                    pending.future.set_exception(exc)
            if not isinstance(exc, Exception):
                raise
            return
        offset = 0
        for pending in batch:
            span = len(pending.itemsets)
            if not pending.future.done():
                pending.future.set_result(bounds[offset:offset + span])
            offset += span

    # -- introspection ---------------------------------------------------

    @property
    def queued(self) -> int:
        """Requests sitting in the current linger window."""
        return len(self._queue)

    def stats(self) -> dict[str, Any]:
        """JSON-friendly admission counters (snake_case, units suffixed)."""
        return {
            "requests": self._requests,
            "queries": self._queries,
            "quota_shed": self._quota_shed,
            "batches": self._batches,
            "coalesced_queries_per_batch": (
                self._flushed_queries / self._batches
                if self._batches else 0.0
            ),
            "queued": len(self._queue),
            "max_batch": self.max_batch,
            "linger_seconds": self.linger,
        }

    # -- lifecycle -------------------------------------------------------

    async def aclose(self) -> None:
        """Flush or fail everything queued; refuse new submissions."""
        self._closed = True
        if self._tasks:
            await asyncio.gather(*tuple(self._tasks), return_exceptions=True)
        leftovers = self._queue
        self._queue = []
        closed = ServiceClosed("batch scheduler")
        for pending in leftovers:
            if not pending.future.done():
                pending.future.set_exception(closed)

    async def __aenter__(self) -> "BatchScheduler":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.aclose()
