"""Asyncio online bound-query service over a live OSSM.

:class:`BoundQueryService` answers Equation (1) upper-bound queries —
single itemsets or batches — against the map it is currently serving,
with:

* an epoch-tagged bounded LRU cache
  (:class:`~repro.serve.cache.EpochLRUCache`), invalidated wholesale
  when :meth:`BoundQueryService.update` advances the map's epoch;
* request coalescing — concurrent queries for the same canonical
  itemset share one evaluation;
* back-pressure — a bounded pending set; requests that would exceed it
  are shed with :class:`~repro.serve.errors.Overloaded`;
* per-request timeouts (:class:`~repro.serve.errors.QueryTimeout`) that
  abandon the *wait*, never the shared evaluation;
* batch evaluation through
  :func:`~repro.parallel.ossm.parallel_upper_bounds` guarded by a
  :class:`~repro.resilience.CircuitBreaker`: one worker failure funds a
  fresh-pool retry, a second opens the circuit and every batch takes
  the serial Equation (1) until a timed recovery probe succeeds — the
  answers are byte-identical either way, only the venue changes. While
  the breaker is open the service keeps shedding excess load through
  the ordinary ``max_pending``/:class:`Overloaded` back-pressure (the
  serial path is slower, so the bounded pending set is what protects
  latency).

Evaluation runs in a thread (``asyncio.to_thread``) so the event loop
stays responsive while numpy and the worker pool do the arithmetic.
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections.abc import Iterable, Sequence
from typing import Any

import numpy as np

from ..core.ossm import OSSM
from ..obs.log import get_logger
from ..obs.metrics import get_registry
from ..obs.quantiles import LATENCY_BUCKETS, SlidingQuantile
from ..obs.trace import trace
from ..parallel.ossm import parallel_upper_bounds
from ..parallel.plan import resolve_workers
from ..parallel.pool import WorkerPool, init_bound_map
from ..resilience import CircuitBreaker, get_injector
from .cache import EpochLRUCache
from .errors import Overloaded, QueryTimeout, ServiceClosed

__all__ = ["BoundQueryService", "canonical_itemset"]

logger = get_logger(__name__)

Itemset = tuple[int, ...]

#: Smallest batch worth shipping to the worker pool; below this the
#: serial numpy path wins on fixed fan-out cost (DESIGN.md §9).
DEFAULT_PARALLEL_THRESHOLD = 64

_UNSET = object()


def canonical_itemset(itemset: Iterable[int]) -> Itemset:
    """Sorted duplicate-free tuple — the cache/coalescing key.

    Equation (1) is a min over the itemset's columns, so item order and
    repetition cannot change the bound; canonicalizing lets ``(2, 1)``,
    ``(1, 2, 2)`` and ``(1, 2)`` share one cache entry and one
    in-flight evaluation.
    """
    items = sorted({int(item) for item in itemset})
    if items and items[0] < 0:
        raise ValueError("item ids must be >= 0")
    return tuple(items)


class BoundQueryService:
    """Online Equation (1) bound server with an epoch-tagged cache.

    Parameters
    ----------
    ossm:
        The map to serve. :meth:`update` swaps in a grown map (its
        ``epoch`` must not be lower than the current one).
    cache_size:
        LRU entry budget of the bound cache.
    max_pending:
        Maximum itemsets being evaluated at once; a request that would
        push past this is shed with :class:`Overloaded`.
    timeout:
        Default per-request timeout in seconds (None = wait forever);
        overridable per call.
    workers:
        Worker processes for batch evaluation (None or 1 = serial
        only). The pool is created lazily and rebuilt when the map
        changes.
    parallel_threshold:
        Minimum same-cardinality group size sent to the pool.
    slo_target:
        Per-request latency objective in seconds; a request slower
        than this (or shed / timed out) consumes error budget. ``None``
        tracks latency quantiles but treats only sheds and timeouts
        as violations.
    slo_objective:
        Fraction of requests that must meet the target (the error
        budget is the remaining fraction); default 99%.
    """

    def __init__(
        self,
        ossm: OSSM,
        *,
        cache_size: int = 4096,
        max_pending: int = 1024,
        timeout: float | None = None,
        workers: int | None = None,
        parallel_threshold: int = DEFAULT_PARALLEL_THRESHOLD,
        slo_target: float | None = None,
        slo_objective: float = 0.99,
    ) -> None:
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive or None")
        if parallel_threshold < 2:
            raise ValueError("parallel_threshold must be >= 2")
        if slo_target is not None and slo_target <= 0:
            raise ValueError("slo_target must be positive or None")
        if not 0.0 < slo_objective <= 1.0:
            raise ValueError("slo_objective must be in (0, 1]")
        self._ossm = ossm
        self._cache = EpochLRUCache(cache_size, epoch=ossm.epoch)
        self.max_pending = int(max_pending)
        self.timeout = timeout
        self.parallel_threshold = int(parallel_threshold)
        self._workers = resolve_workers(workers) if workers is not None else 1
        # Two strikes per batch (first try + fresh-pool retry) open the
        # breaker: parallel evaluation is then skipped entirely until
        # the recovery window admits a probe. Replaces the old sticky
        # _parallel_ok flag, which never re-probed.
        self._breaker = CircuitBreaker(
            failure_threshold=2, recovery_time=30.0, name="serve.parallel"
        )
        self._pool: WorkerPool | None = None
        self._pool_map: OSSM | None = None
        self._pool_lock = threading.Lock()
        self._retired: list[WorkerPool] = []
        self._inflight: dict[Itemset, asyncio.Future[int]] = {}
        self._pending = 0
        self._tasks: set[asyncio.Task[None]] = set()
        self._closed = False
        self._published = {
            "hits": 0, "misses": 0, "evictions": 0,
            "invalidations": 0, "stale_drops": 0,
        }
        self.slo_target = slo_target
        self.slo_objective = float(slo_objective)
        self._latency = SlidingQuantile()
        self._slo_requests = 0
        self._slo_violations = 0

    # -- introspection ---------------------------------------------------

    @property
    def ossm(self) -> OSSM:
        """The map currently being served."""
        return self._ossm

    @property
    def epoch(self) -> int:
        """Epoch of the map currently being served."""
        return self._ossm.epoch

    @property
    def pending(self) -> int:
        """Itemsets currently being evaluated (the queue depth)."""
        return self._pending

    @property
    def parallel_healthy(self) -> bool:
        """False while the pool breaker is open (failed twice on one
        batch); flips back once a recovery probe succeeds."""
        return self._workers > 1 and not self._breaker.is_open

    def stats(self) -> dict[str, Any]:
        """JSON-friendly snapshot of the service's counters."""
        latency = self._latency.snapshot()
        allowed = self._slo_requests * (1.0 - self.slo_objective)
        if allowed > 0:
            # Clamped at zero: a budget more than spent is just spent.
            budget_remaining = max(
                0.0, 1.0 - self._slo_violations / allowed
            )
        else:
            budget_remaining = 1.0 if self._slo_violations == 0 else 0.0
        return {
            "epoch": self._ossm.epoch,
            "pending": self._pending,
            "cache": self._cache.stats.as_dict(),
            "cache_entries": len(self._cache),
            "parallel_healthy": self.parallel_healthy,
            "breaker": self._breaker.state,
            "workers": self._workers,
            "latency": {
                "window_count": latency["count"],
                "window_seconds": latency["window_seconds"],
                "p50_ms": latency["p50"] * 1e3,
                "p95_ms": latency["p95"] * 1e3,
                "p99_ms": latency["p99"] * 1e3,
            },
            "slo": {
                "target_seconds": self.slo_target,
                "objective": self.slo_objective,
                "requests": self._slo_requests,
                "violations": self._slo_violations,
                "budget_remaining": budget_remaining,
            },
        }

    # -- epoch / map management ------------------------------------------

    def update(self, ossm: OSSM) -> bool:
        """Serve *ossm* from now on; returns True if anything changed.

        Advancing the epoch invalidates the cache wholesale (DESIGN.md
        §10); a same-epoch swap (e.g. a ``merge_segments`` reshape of
        the same collection) also clears the cache, because a reshaped
        map yields different — though equally sound — bound values.
        In-flight evaluations finish against the map they started with
        and deliver to their original waiters; their results are
        dropped at the cache door by the epoch tag.
        """
        if ossm is self._ossm:
            return False
        if ossm.epoch < self._ossm.epoch:
            raise ValueError(
                f"cannot move the service backwards: serving epoch "
                f"{self._ossm.epoch}, got {ossm.epoch}"
            )
        advanced = self._cache.advance_epoch(ossm.epoch)
        if not advanced:
            self._cache.clear()
        self._ossm = ossm
        # New queries must not coalesce onto old-map evaluations; the
        # running batch keeps its own reference to the superseded dict.
        self._inflight = {}
        with self._pool_lock:
            if self._pool is not None:
                self._retired.append(self._pool)
            self._pool = None
            self._pool_map = None
        # A fresh map means a fresh pool; give parallelism a clean slate.
        self._breaker.reset()
        metrics = get_registry()
        if metrics.enabled:
            metrics.inc("serve.updates")
            self._flush_cache_metrics(metrics)
        logger.debug("service now at epoch %d", ossm.epoch)
        return True

    # -- querying --------------------------------------------------------

    async def query(
        self, itemset: Iterable[int], *, timeout: Any = _UNSET
    ) -> int:
        """Equation (1) upper bound for one itemset."""
        bounds = await self.query_batch([itemset], timeout=timeout)
        return bounds[0]

    async def query_batch(
        self,
        itemsets: Sequence[Iterable[int]],
        *,
        timeout: Any = _UNSET,
    ) -> list[int]:
        """Bounds for *itemsets*, aligned with the input order.

        Cache hits are answered immediately; misses coalesce with any
        identical in-flight query and the remainder is evaluated as one
        batch. Raises :class:`Overloaded` when the miss set would
        exceed ``max_pending`` and :class:`QueryTimeout` when the
        per-request deadline passes first.

        Every request lands in the rolling latency window behind
        ``stats()``; sheds, timeouts, and (when ``slo_target`` is set)
        requests over the target consume error budget.
        """
        if self._closed:
            raise ServiceClosed()
        start = time.perf_counter()
        shed_or_timed_out = False
        try:
            return await self._query_batch(itemsets, timeout=timeout)
        except (Overloaded, QueryTimeout):
            shed_or_timed_out = True
            raise
        finally:
            elapsed = time.perf_counter() - start
            self._latency.observe(elapsed)
            self._slo_requests += 1
            violated = shed_or_timed_out or (
                self.slo_target is not None and elapsed > self.slo_target
            )
            if violated:
                self._slo_violations += 1
            metrics = get_registry()
            if metrics.enabled:
                metrics.observe(
                    "serve.latency_seconds", elapsed,
                    buckets=LATENCY_BUCKETS,
                )
                if violated:
                    metrics.inc("serve.slo.violations")

    async def _query_batch(
        self,
        itemsets: Sequence[Iterable[int]],
        *,
        timeout: Any = _UNSET,
    ) -> list[int]:
        wait_for = self.timeout if timeout is _UNSET else timeout
        ossm = self._ossm
        inflight = self._inflight
        cache = self._cache
        results: dict[int, int] = {}
        waiting: dict[int, asyncio.Future[int]] = {}
        fresh: list[Itemset] = []
        n_hits = 0
        for index, raw in enumerate(itemsets):
            key = canonical_itemset(raw)
            if key and key[-1] >= ossm.n_items:
                raise ValueError(
                    f"item {key[-1]} out of range for a map over "
                    f"{ossm.n_items} items"
                )
            cached = cache.get(key)
            if cached is not None:
                results[index] = cached
                n_hits += 1
                continue
            future = inflight.get(key)
            if future is None:
                future = asyncio.get_running_loop().create_future()
                inflight[key] = future
                fresh.append(key)
            waiting[index] = future

        metrics = get_registry()
        if metrics.enabled:
            metrics.inc("serve.requests")
            metrics.inc("serve.queries", len(itemsets))
        if fresh:
            if self._pending + len(fresh) > self.max_pending:
                # The fresh futures were registered without an await in
                # between, so no other task can have coalesced onto
                # them yet; unregistering is race-free.
                for key in fresh:
                    inflight.pop(key, None)
                if metrics.enabled:
                    metrics.inc("serve.shed")
                raise Overloaded(
                    self._pending + len(fresh), self.max_pending
                )
            self._pending += len(fresh)
            if metrics.enabled:
                metrics.set_gauge("serve.queue_depth", self._pending)
            task = asyncio.create_task(
                self._run_batch(ossm, inflight, fresh)
            )
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)

        if waiting:
            gathered = asyncio.gather(
                *waiting.values(), return_exceptions=False
            )
            try:
                if wait_for is None:
                    values = await gathered
                else:
                    # shield: a timed-out waiter must not cancel the
                    # evaluation that coalesced waiters still need.
                    values = await asyncio.wait_for(
                        asyncio.shield(gathered), wait_for
                    )
            except asyncio.TimeoutError:
                if metrics.enabled:
                    metrics.inc("serve.timeouts")
                raise QueryTimeout(float(wait_for)) from None
            for index, value in zip(waiting, values):
                results[index] = value
        if metrics.enabled:
            self._flush_cache_metrics(metrics)
        return [results[index] for index in range(len(itemsets))]

    async def _run_batch(
        self,
        ossm: OSSM,
        inflight: dict[Itemset, asyncio.Future[int]],
        keys: list[Itemset],
    ) -> None:
        """Evaluate *keys* against *ossm* and deliver to the futures."""
        metrics = get_registry()
        try:
            with trace(
                "serve.batch", size=len(keys), epoch=ossm.epoch
            ), metrics.time("serve.batch_seconds"):
                try:
                    bounds = await asyncio.to_thread(
                        self._evaluate, ossm, keys
                    )
                except Exception as exc:
                    # One retry absorbs transient evaluation failures
                    # (an injected serve.eval_error, a pool racing an
                    # epoch swap) without failing every coalesced
                    # waiter; a second failure is delivered below.
                    if metrics.enabled:
                        metrics.inc("resilience.serve.eval_retries")
                    logger.warning(
                        "batch evaluation failed, retrying once: %r", exc
                    )
                    bounds = await asyncio.to_thread(
                        self._evaluate, ossm, keys
                    )
        except BaseException as exc:
            # Deliver the failure through the futures; re-raising here
            # would only produce an unretrieved-task warning since no
            # one awaits the batch task itself.
            logger.error("batch evaluation failed: %r", exc)
            for key in keys:
                future = inflight.pop(key, None)
                if future is not None and not future.done():
                    future.set_exception(exc)
        else:
            cache = self._cache
            for key, bound in zip(keys, bounds):
                cache.put(key, bound, ossm.epoch)
                future = inflight.pop(key, None)
                if future is not None and not future.done():
                    future.set_result(bound)
        finally:
            self._pending -= len(keys)
            if metrics.enabled:
                metrics.set_gauge("serve.queue_depth", self._pending)

    # -- evaluation (worker thread) --------------------------------------

    def _evaluate(self, ossm: OSSM, keys: list[Itemset]) -> list[int]:
        """Bounds for *keys* (mixed cardinality), grouped per level."""
        injector = get_injector()
        if injector.enabled:
            injector.maybe_raise("serve.eval_error")
            injector.maybe_sleep("serve.latency")
        self._drain_retired()
        out = [0] * len(keys)
        by_size: dict[int, list[int]] = {}
        for position, key in enumerate(keys):
            by_size.setdefault(len(key), []).append(position)
        for size in sorted(by_size):
            positions = by_size[size]
            if size == 0:
                empty_bound = ossm.upper_bound(())
                for position in positions:
                    out[position] = empty_bound
                continue
            group = [keys[position] for position in positions]
            values = self._group_bounds(ossm, group)
            for position, value in zip(positions, values):
                out[position] = int(value)
        return out

    def _group_bounds(
        self, ossm: OSSM, group: list[Itemset]
    ) -> np.ndarray:
        """One same-cardinality group: pool while the breaker allows it,
        serial otherwise — the answers are identical either way."""
        if (
            self._workers > 1
            and len(group) >= self.parallel_threshold
            and self._breaker.allow()
        ):
            try:
                return self._parallel_bounds(ossm, group)
            except Exception:
                # Two strikes (first try + fresh-pool retry): the
                # breaker is now open and every group degrades to the
                # serial path — always exact — until a recovery probe.
                metrics = get_registry()
                if metrics.enabled:
                    metrics.inc("serve.fallbacks")
                logger.warning(
                    "worker pool failed twice; serving serially",
                    exc_info=True,
                )
        return ossm.upper_bounds(group)

    def _parallel_bounds(
        self, ossm: OSSM, group: list[Itemset]
    ) -> np.ndarray:
        """Pool evaluation with one retry on a fresh pool.

        Each pool failure lands on the breaker: the first strike funds
        the in-place retry, the second opens the circuit.
        """
        with self._pool_lock:
            pool = self._ensure_pool(ossm)
        try:
            bounds = parallel_upper_bounds(ossm, group, pool=pool)
        except Exception:
            self._breaker.record_failure()
            # A worker died (or the pool was retired under us); retry
            # once on a rebuilt pool before giving up on parallelism.
            with self._pool_lock:
                if self._pool is pool:
                    self._pool = None
                    self._pool_map = None
                self._retired.append(pool)
                fresh_pool = self._ensure_pool(ossm)
            metrics = get_registry()
            if metrics.enabled:
                metrics.inc("serve.retries")
            try:
                bounds = parallel_upper_bounds(
                    ossm, group, pool=fresh_pool
                )
            except Exception:
                self._breaker.record_failure()
                raise
        self._breaker.record_success()
        return bounds

    def _ensure_pool(self, ossm: OSSM) -> WorkerPool:
        """The pool bound to *ossm*'s matrix; caller holds the lock."""
        if self._pool is not None and self._pool_map is ossm:
            return self._pool
        if self._pool is not None:
            self._retired.append(self._pool)
        self._pool = WorkerPool(
            self._workers, init_bound_map, np.asarray(ossm.matrix)
        )
        self._pool_map = ossm
        return self._pool

    def _drain_retired(self) -> None:
        """Close pools retired by updates/rebuilds (worker thread)."""
        while True:
            with self._pool_lock:
                if not self._retired:
                    return
                pool = self._retired.pop()
            pool.close()

    # -- metrics ---------------------------------------------------------

    def _flush_cache_metrics(self, metrics: Any) -> None:
        """Publish cache-counter deltas since the last flush."""
        snapshot = self._cache.stats.as_dict()
        for name in self._published:
            delta = int(snapshot[name]) - self._published[name]
            if delta and metrics.enabled:
                metrics.inc(f"serve.cache.{name}", delta)
                self._published[name] += delta

    # -- lifecycle -------------------------------------------------------

    async def aclose(self) -> None:
        """Drain in-flight batches and release every worker pool."""
        self._closed = True
        if self._tasks:
            await asyncio.gather(*tuple(self._tasks), return_exceptions=True)
        with self._pool_lock:
            pools = list(self._retired)
            self._retired.clear()
            if self._pool is not None:
                pools.append(self._pool)
                self._pool = None
                self._pool_map = None
        for pool in pools:
            await asyncio.to_thread(pool.close)

    async def __aenter__(self) -> "BoundQueryService":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.aclose()
