"""HTTP gateway: the network edge of the multi-tenant serving plane.

:class:`Gateway` extends the stdlib-asyncio HTTP pattern of
:class:`~repro.obs.export.OpsServer` (``asyncio.start_server``, no
dependencies) into a small versioned API over a
:class:`~repro.serve.tenants.TenantRegistry`:

========  ==============================  =================================
Method    Path                            Meaning
========  ==============================  =================================
GET       ``/health``                     liveness + tenant count
GET       ``/ready``                      readiness (503 while draining)
GET       ``/metrics``                    Prometheus text exposition
GET       ``/stats``                      registry-wide stats snapshot
GET       ``/v1/tenants``                 registered tenant names
POST      ``/v1/tenants/{t}/bounds``      Equation (1) bounds (single or
                                          batched itemsets)
PUT       ``/v1/tenants/{t}/ossm``        upload/replace the tenant's map
                                          (raw ``.npz`` body, CRC-verified,
                                          published behind an epoch bump)
GET       ``/v1/tenants/{t}/stats``       that tenant's stats snapshot
DELETE    ``/v1/tenants/{t}``             tear the tenant down
========  ==============================  =================================

Error mapping is *mechanical*: every :class:`~repro.serve.errors.
ServeError` carries ``status_code`` and ``retry_after`` attributes and
the gateway reads exactly those two — no ``isinstance`` ladders, no
string matching on type names. The JSON error body is
``{"error": <class name>, "message": ..., "retry_after": ...}`` and
``retry_after`` additionally becomes a ``Retry-After`` header.

Connections are HTTP/1.1 keep-alive: one handler loops over requests
until the client closes, sends ``Connection: close``, or idles past
the per-request read deadline — the closed-loop bench drives hundreds
of clients over persistent connections.

Graceful shutdown separates *liveness* from *readiness*:
:meth:`Gateway.begin_drain` flips ``/ready`` to 503 (load balancers
stop routing here) while ``/health`` stays 200 (orchestrators do not
kill the draining process), and query/mutation routes answer with the
typed :class:`~repro.serve.errors.Draining` 503 so clients fail over;
in-flight work then finishes under the CLI's drain deadline.
"""

from __future__ import annotations

import asyncio
import json
import math
import os
import tempfile
from typing import Any

from ..core.ossm import OSSM
from ..obs.export import render_prometheus
from ..obs.log import get_logger
from ..obs.metrics import MetricsRegistry, get_registry
from ..resilience import CorruptArtifact, IntegrityError
from .errors import Draining, InvalidRequest, ServeError
from .tenants import TenantRegistry, validate_tenant_name

__all__ = ["Gateway"]

logger = get_logger(__name__)

#: Read deadline for one request's head/body; an idle keep-alive
#: connection past this is closed (the client simply reconnects).
_REQUEST_TIMEOUT = 10.0

#: Largest accepted request body — bounds uploads of any realistic
#: OSSM artifact while keeping a rogue client from ballooning memory.
_MAX_BODY = 64 * 1024 * 1024

_REASONS = {
    200: "OK",
    201: "Created",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

_JSON = "application/json"
_TEXT = "text/plain; charset=utf-8"
_PROM = "text/plain; version=0.0.4; charset=utf-8"

#: (status, content-type, body bytes, extra headers)
_Response = tuple[int, str, bytes, dict[str, str]]


def _json_body(payload: Any) -> bytes:
    return (json.dumps(payload) + "\n").encode("utf-8")


def _parse_head(raw: bytes) -> tuple[str, str, dict[str, str]] | None:
    """Request line + headers from one ``\\r\\n\\r\\n``-terminated head."""
    lines = raw.decode("latin-1", "replace").split("\r\n")
    parts = lines[0].split()
    if len(parts) < 2:
        return None
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if ":" not in line:
            continue
        key, _, value = line.partition(":")
        headers[key.strip().lower()] = value.strip()
    return parts[0].upper(), parts[1], headers


def _load_ossm_artifact(data: bytes) -> OSSM:
    """Verify and load an uploaded ``.npz`` artifact (worker thread).

    ``OSSM.load`` goes through ``verified_load_npz``, so a truncated or
    bit-flipped upload raises ``CorruptArtifact``/``IntegrityError``
    (the gateway maps both to 400) instead of serving garbage bounds.
    """
    handle = tempfile.NamedTemporaryFile(suffix=".npz", delete=False)
    try:
        handle.write(data)
        handle.close()
        return OSSM.load(handle.name)
    finally:
        if not handle.closed:
            handle.close()
        os.unlink(handle.name)


def _parse_itemsets(
    body: bytes, n_items: int
) -> tuple[list[list[int]], bool]:
    """The itemsets of a ``/bounds`` request, validated up front.

    Returns ``(itemsets, single)`` where *single* means the client sent
    ``{"itemset": [...]}`` and expects a scalar ``bound`` back.

    Validation happens *before* admission so one malformed request is
    rejected at the door with 400 instead of poisoning the coalesced
    batch it would have ridden in.
    """
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise InvalidRequest(
            f"request body is not valid JSON: {exc}"
        ) from None
    if not isinstance(payload, dict):
        raise InvalidRequest("request body must be a JSON object")
    has_single = "itemset" in payload
    has_batch = "itemsets" in payload
    if has_single == has_batch:
        raise InvalidRequest(
            'request must carry exactly one of "itemset" (single) or '
            '"itemsets" (batch)'
        )
    raw = [payload["itemset"]] if has_single else payload["itemsets"]
    if not isinstance(raw, list):
        raise InvalidRequest('"itemsets" must be a JSON array')
    itemsets: list[list[int]] = []
    for position, candidate in enumerate(raw):
        if not isinstance(candidate, list):
            raise InvalidRequest(
                f"itemset #{position} must be a JSON array of item ids"
            )
        items: list[int] = []
        for item in candidate:
            if isinstance(item, bool) or not isinstance(item, int):
                raise InvalidRequest(
                    f"itemset #{position} holds a non-integer item "
                    f"{item!r}"
                )
            if not 0 <= item < n_items:
                raise InvalidRequest(
                    f"item {item} out of range for a map over "
                    f"{n_items} items"
                )
            items.append(item)
        itemsets.append(items)
    return itemsets, has_single


class Gateway:
    """Multi-tenant HTTP front end over a :class:`TenantRegistry`.

    Parameters
    ----------
    tenants:
        The registry to serve. ``None`` creates a private one (closed
        again by :meth:`aclose`); a registry passed in stays owned by
        the caller.
    registry:
        Metrics registry for ``/metrics``; ``None`` scrapes whatever
        registry is active at request time.
    host / port:
        Bind address; port 0 picks a free one (read it back from
        :attr:`port` after :meth:`start`).
    """

    def __init__(
        self,
        tenants: TenantRegistry | None = None,
        *,
        registry: MetricsRegistry | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._own_tenants = tenants is None
        self.tenants = tenants if tenants is not None else TenantRegistry()
        self._registry = registry
        self._host = host
        self._port = int(port)
        self._server: asyncio.AbstractServer | None = None
        self._draining = False

    # -- lifecycle --------------------------------------------------------

    @property
    def host(self) -> str:
        return self._host

    @property
    def port(self) -> int:
        """The bound port (the requested one until :meth:`start`)."""
        return self._port

    @property
    def url(self) -> str:
        """Base URL of the bound listener."""
        return f"http://{self._host}:{self._port}"

    async def start(self) -> "Gateway":
        """Bind and begin serving; idempotent."""
        if self._server is not None:
            return self
        self._server = await asyncio.start_server(
            self._handle, self._host, self._port
        )
        sockets = self._server.sockets or ()
        if sockets:
            self._port = sockets[0].getsockname()[1]
        logger.info("gateway on %s:%d", self._host, self._port)
        return self

    @property
    def draining(self) -> bool:
        """Whether :meth:`begin_drain` has flipped readiness off."""
        return self._draining

    def begin_drain(self) -> None:
        """Flip ``/ready`` to 503 and shed new query/mutation work.

        Idempotent and synchronous (safe from a signal handler's
        ``call_soon``). The listener stays open so health probes and
        already-connected clients get answers; in-flight batches keep
        running until :meth:`aclose` / the registry drain completes.
        """
        if not self._draining:
            self._draining = True
            logger.info("gateway draining: readiness now 503")
            metrics = self._active_registry()
            if metrics.enabled:
                metrics.set_gauge("serve.gateway.draining", 1)

    async def aclose(self) -> None:
        """Stop listening; close the registry too if this gateway owns it."""
        server = self._server
        self._server = None
        if server is not None:
            server.close()
            await server.wait_closed()
        if self._own_tenants:
            await self.tenants.aclose()

    async def __aenter__(self) -> "Gateway":
        return await self.start()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.aclose()

    # -- connection handling ----------------------------------------------

    def _active_registry(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()

    async def _handle(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """One keep-alive connection: loop requests until close/idle."""
        try:
            while True:
                try:
                    raw = await asyncio.wait_for(
                        reader.readuntil(b"\r\n\r\n"), _REQUEST_TIMEOUT
                    )
                except (
                    asyncio.IncompleteReadError,
                    asyncio.LimitOverrunError,
                    asyncio.TimeoutError,
                ):
                    return
                head = _parse_head(raw)
                if head is None:
                    await self._respond(
                        writer,
                        (400, _TEXT, b"bad request\n", {}),
                        keep_alive=False,
                    )
                    return
                method, path, headers = head
                try:
                    length = int(headers.get("content-length", "0"))
                except ValueError:
                    length = -1
                if length < 0 or length > _MAX_BODY:
                    await self._respond(
                        writer,
                        (413, _TEXT, b"payload too large\n", {}),
                        keep_alive=False,
                    )
                    return
                body = b""
                if length:
                    try:
                        body = await asyncio.wait_for(
                            reader.readexactly(length), _REQUEST_TIMEOUT
                        )
                    except (
                        asyncio.IncompleteReadError,
                        asyncio.TimeoutError,
                    ):
                        return
                keep_alive = (
                    headers.get("connection", "keep-alive").lower()
                    != "close"
                )
                response = await self._route(method, path, body)
                metrics = self._active_registry()
                if metrics.enabled:
                    metrics.inc("serve.gateway.requests")
                    if response[0] >= 400:
                        metrics.inc("serve.gateway.errors")
                await self._respond(writer, response, keep_alive=keep_alive)
                if not keep_alive:
                    return
        except (ConnectionError, BrokenPipeError):  # client went away
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        response: _Response,
        *,
        keep_alive: bool,
    ) -> None:
        status, content_type, payload, extra = response
        if status == 204:
            payload = b""
        connection = "keep-alive" if keep_alive else "close"
        head = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(payload)}",
            f"Connection: {connection}",
        ]
        for key, value in extra.items():
            head.append(f"{key}: {value}")
        writer.write(
            ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + payload
        )
        await writer.drain()

    # -- routing ----------------------------------------------------------

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> _Response:
        """Dispatch one request, mapping every error mechanically."""
        path = path.split("?", 1)[0]
        try:
            return await self._dispatch(method, path, body)
        except ServeError as exc:
            return self._error_response(exc)
        except (CorruptArtifact, IntegrityError) as exc:
            return self._error_response(
                InvalidRequest(f"rejected artifact: {exc}")
            )
        except ValueError as exc:
            return self._error_response(InvalidRequest(str(exc)))
        except Exception as exc:  # noqa: BLE001 - edge must answer
            logger.error("unhandled gateway error: %r", exc, exc_info=True)
            return self._error_response(ServeError("internal error"))

    def _error_response(self, exc: ServeError) -> _Response:
        """The mechanical ServeError -> HTTP mapping (see errors.py)."""
        payload: dict[str, Any] = {
            "error": type(exc).__name__,
            "message": str(exc),
        }
        extra: dict[str, str] = {}
        retry_after = exc.retry_after
        if retry_after is not None:
            payload["retry_after"] = retry_after
            extra["Retry-After"] = str(max(0, math.ceil(retry_after)))
        return exc.status_code, _JSON, _json_body(payload), extra

    async def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> _Response:
        if path == "/health":
            if method != "GET":
                return self._method_not_allowed()
            payload = {"status": "ok", "tenants": len(self.tenants)}
            return 200, _JSON, _json_body(payload), {}
        if path == "/ready":
            # Liveness vs readiness: /health stays 200 through a drain
            # (don't kill me), /ready goes 503 (don't route to me).
            if method != "GET":
                return self._method_not_allowed()
            if self._draining:
                payload = {"status": "draining"}
                return 503, _JSON, _json_body(payload), {}
            payload = {"status": "ready", "tenants": len(self.tenants)}
            return 200, _JSON, _json_body(payload), {}
        if path == "/metrics":
            if method != "GET":
                return self._method_not_allowed()
            text = render_prometheus(self._active_registry().snapshot())
            return 200, _PROM, text.encode("utf-8"), {}
        if path == "/stats":
            if method != "GET":
                return self._method_not_allowed()
            return 200, _JSON, _json_body(self.tenants.stats()), {}
        if path in ("/v1/tenants", "/v1/tenants/"):
            if method != "GET":
                return self._method_not_allowed()
            payload = {"tenants": self.tenants.names()}
            return 200, _JSON, _json_body(payload), {}
        if not path.startswith("/v1/tenants/"):
            return 404, _TEXT, b"not found\n", {}
        segments = [part for part in path.split("/") if part]
        # segments == ["v1", "tenants", name] or [..., name, leaf]
        if len(segments) not in (3, 4):
            return 404, _TEXT, b"not found\n", {}
        name = validate_tenant_name(segments[2])
        leaf = segments[3] if len(segments) == 4 else None
        if leaf is None:
            if method != "DELETE":
                return self._method_not_allowed()
            if self._draining:
                raise Draining()
            await self.tenants.remove(name)
            return 204, _JSON, b"", {}
        if leaf == "bounds":
            if method != "POST":
                return self._method_not_allowed()
            if self._draining:
                raise Draining()
            return await self._handle_bounds(name, body)
        if leaf == "ossm":
            if method != "PUT":
                return self._method_not_allowed()
            if self._draining:
                raise Draining()
            return await self._handle_upload(name, body)
        if leaf == "stats":
            if method != "GET":
                return self._method_not_allowed()
            tenant = self.tenants.get(name)
            return 200, _JSON, _json_body(tenant.stats()), {}
        return 404, _TEXT, b"not found\n", {}

    def _method_not_allowed(self) -> _Response:
        return 405, _TEXT, b"method not allowed\n", {}

    # -- endpoints ---------------------------------------------------------

    async def _handle_bounds(self, name: str, body: bytes) -> _Response:
        """POST /v1/tenants/{t}/bounds — single or batched Equation (1)."""
        tenant = self.tenants.get(name)
        # Captured before the query: a publish landing mid-flight must
        # not mislabel bounds computed against the admitted map.
        epoch = tenant.epoch
        itemsets, single = _parse_itemsets(
            body, tenant.service.ossm.n_items
        )
        bounds = await tenant.query_batch(itemsets)
        payload: dict[str, Any] = {
            "tenant": name,
            "epoch": epoch,
        }
        if single:
            payload["bound"] = bounds[0]
        else:
            payload["bounds"] = bounds
        return 200, _JSON, _json_body(payload), {}

    async def _handle_upload(self, name: str, body: bytes) -> _Response:
        """PUT /v1/tenants/{t}/ossm — create or hot-swap behind an epoch."""
        if not body:
            raise InvalidRequest("empty upload: expected an .npz artifact")
        ossm = await asyncio.to_thread(_load_ossm_artifact, body)
        created = name not in self.tenants
        if created:
            tenant = self.tenants.create(name, ossm)
            epoch = tenant.epoch
        else:
            epoch = self.tenants.publish(name, ossm)
        payload = {
            "tenant": name,
            "epoch": epoch,
            "created": created,
            "n_segments": ossm.n_segments,
            "n_items": ossm.n_items,
        }
        return (201 if created else 200), _JSON, _json_body(payload), {}
