"""Epoch-tagged bounded LRU cache for Equation (1) bounds.

The OSSM is sound only for the collection it was built from: once the
collection grows (``extend_ossm`` or a
:class:`~repro.core.incremental.StreamingOSSMBuilder` advancing), an
old bound may undercount the new data and serving it would break the
no-false-dismissal guarantee. The map therefore carries an *epoch*
(:attr:`repro.core.ossm.OSSM.epoch`) that every growth bumps, and this
cache enforces the DESIGN.md §10 invariant:

    a cached bound is served only if its tagged epoch equals the
    current map epoch.

Invalidation is wholesale — :meth:`advance_epoch` drops every entry —
because a grown collection invalidates *all* previously computed
bounds, not a subset. Entries are nevertheless individually tagged so
a racing writer (a bound computed against epoch ``e`` landing after
the cache moved to ``e+1``) is silently dropped rather than poisoning
the new epoch.

The cache itself is synchronous and obs-free; the service layer owns
metrics so this module stays cheap enough to sit on the hot query
path.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

__all__ = ["CacheStats", "EpochLRUCache"]

Itemset = tuple[int, ...]


@dataclass
class CacheStats:
    """Monotonic counters of one cache's lifetime."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    stale_drops: int = 0

    @property
    def hit_rate(self) -> float:
        """Hits over lookups, 0.0 before the first lookup."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def as_dict(self) -> dict[str, float]:
        """Plain-dict snapshot (JSON-friendly)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "stale_drops": self.stale_drops,
            "hit_rate": self.hit_rate,
        }


class EpochLRUCache:
    """Bounded LRU mapping canonical itemsets to epoch-tagged bounds.

    Parameters
    ----------
    maxsize:
        Entry budget; the least recently used entry is evicted when a
        put would exceed it.
    epoch:
        Epoch the cache starts at (the serving map's epoch).
    """

    def __init__(self, maxsize: int = 4096, epoch: int = 0) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        if epoch < 0:
            raise ValueError("epoch must be >= 0")
        self.maxsize = int(maxsize)
        self.epoch = int(epoch)
        self.stats = CacheStats()
        self._entries: OrderedDict[Itemset, tuple[int, int]] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def advance_epoch(self, epoch: int) -> bool:
        """Move to *epoch*, dropping every entry if it actually advanced.

        Returns True when the epoch changed (and the cache was
        invalidated wholesale). Epochs only grow — a smaller value
        means the caller is trying to serve an older map, which the
        epoch discipline exists to prevent.
        """
        if epoch == self.epoch:
            return False
        if epoch < self.epoch:
            raise ValueError(
                f"epoch must be monotonic: cache at {self.epoch}, "
                f"got {epoch}"
            )
        self.stats.invalidations += len(self._entries)
        self._entries.clear()
        self.epoch = int(epoch)
        return True

    def get(self, itemset: Itemset) -> int | None:
        """The cached bound for *itemset* at the current epoch, or None.

        An entry tagged with an older epoch is dropped on sight (the
        §10 invariant) and reported as a miss.
        """
        entry = self._entries.get(itemset)
        if entry is None:
            self.stats.misses += 1
            return None
        epoch, bound = entry
        if epoch != self.epoch:
            del self._entries[itemset]
            self.stats.stale_drops += 1
            self.stats.misses += 1
            return None
        self._entries.move_to_end(itemset)
        self.stats.hits += 1
        return bound

    def put(self, itemset: Itemset, bound: int, epoch: int) -> bool:
        """Insert a bound computed against map *epoch*.

        Returns False (and stores nothing) when *epoch* is stale — the
        normal outcome of a computation that raced an invalidation.
        """
        if epoch != self.epoch:
            self.stats.stale_drops += 1
            return False
        self._entries[itemset] = (int(epoch), int(bound))
        self._entries.move_to_end(itemset)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        return True

    def clear(self) -> None:
        """Drop every entry without touching the epoch or stats."""
        self._entries.clear()
