"""Hybrid segmentation strategies (Section 5.4 of the paper).

For a large initial page count ``P``, the quadratic RC/Greedy cost is
prohibitive. The hybrids spend the first phase running Random to shrink
``P`` pages to ``n_mid`` segments (``n_user < n_mid ≪ P``), then let the
elaborate algorithm finish from there — Random-RC and Random-Greedy in
the paper. Section 6.3 recommends ``n_mid`` between 100 and 500.
"""

from __future__ import annotations

from .greedy import GreedySegmenter
from .rc import RCSegmenter
from .random_seg import RandomSegmenter
from .segmentation import MergeState, Segmenter

__all__ = ["HybridSegmenter", "RandomRCSegmenter", "RandomGreedySegmenter"]


class HybridSegmenter(Segmenter):
    """Compose two segmenters: *first* down to ``n_mid``, then *second*.

    Both phases operate on the same merge state, so the second phase
    sees exactly the segments the first produced — including their page
    groups, which the final OSSM reports.
    """

    def __init__(
        self,
        first: Segmenter,
        second: Segmenter,
        n_mid: int,
        items=None,
    ) -> None:
        super().__init__(items=items)
        if n_mid < 1:
            raise ValueError("n_mid must be >= 1")
        self.first = first
        self.second = second
        self.n_mid = int(n_mid)
        self.name = f"{first.name}-{second.name}"
        # The phases must score losses on the same item restriction as
        # the composite, or the bubble list would silently not apply.
        first.items = self.items
        second.items = self.items

    def _reduce(self, state: MergeState, n_user: int) -> None:
        # If the budget already exceeds n_mid, the cheap phase carries
        # the whole reduction (the elaborate phase has nothing to do).
        midpoint = max(self.n_mid, n_user)
        if state.n_segments > midpoint:
            self.first._reduce(state, midpoint)
        if state.n_segments > n_user:
            self.second._reduce(state, n_user)


class RandomRCSegmenter(HybridSegmenter):
    """The paper's Random-RC strategy."""

    def __init__(self, n_mid: int = 200, seed: int = 0, items=None) -> None:
        super().__init__(
            RandomSegmenter(seed=seed),
            RCSegmenter(seed=seed + 1),
            n_mid=n_mid,
            items=items,
        )


class RandomGreedySegmenter(HybridSegmenter):
    """The paper's Random-Greedy strategy."""

    def __init__(self, n_mid: int = 200, seed: int = 0, items=None) -> None:
        super().__init__(
            RandomSegmenter(seed=seed),
            GreedySegmenter(),
            n_mid=n_mid,
            items=items,
        )
