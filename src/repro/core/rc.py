"""The RC (Random Closest) segmentation algorithm (Figure 3 of the paper).

Each iteration picks a *random* live segment and merges it with its
closest neighbour — the segment minimizing the Equation (2) pair loss.
Like Greedy it prefers cheap merges, but it drops the global-minimum
requirement and the priority queue: one scan of the survivors per
iteration, ``O(P m²)`` each, ``O(P² m²)`` overall.
"""

from __future__ import annotations

import numpy as np

from ..obs.metrics import get_registry
from .segmentation import MergeState, Segmenter

__all__ = ["RCSegmenter"]


class RCSegmenter(Segmenter):
    """Merge a random segment with its loss-closest neighbour.

    Deterministic given *seed*; ties on loss resolve to the
    lowest-handle neighbour.
    """

    name = "rc"

    def __init__(self, seed: int = 0, items=None) -> None:
        super().__init__(items=items)
        self.seed = seed

    def _reduce(self, state: MergeState, n_user: int) -> None:
        metrics = get_registry()
        rng = np.random.default_rng(self.seed)
        while state.n_segments > n_user:
            ids = state.segment_ids()
            anchor = ids[int(rng.integers(len(ids)))]
            closest = None
            best_loss = None
            for other in ids:
                if other == anchor:
                    continue
                loss = state.loss(anchor, other)
                metrics.inc("segmentation.rc.neighbour_scans")
                if best_loss is None or loss < best_loss:
                    best_loss = loss
                    closest = other
            state.merge(anchor, closest)
            metrics.inc("segmentation.rc.merges")
