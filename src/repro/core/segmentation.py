"""Common machinery for the constrained segmentation algorithms.

Every algorithm in Section 5 starts from ``P`` initial segments (the
pages), repeatedly merges pairs, and stops at ``n_user`` segments. They
differ only in *which* pair they merge. This module provides:

* :class:`SegmentationResult` — groups, the realized OSSM, and cost
  accounting (wall time and the number of Equation (2) evaluations,
  which is the machine-independent cost the complexity analysis in the
  paper counts);
* :class:`Segmenter` — the abstract interface;
* :class:`MergeState` — the shared mutable workspace: live segment
  rows, the page groups behind each segment, cached ``f`` values, and
  the loss evaluator (optionally restricted to a bubble list).
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from ..data.pages import PagedDatabase
from ..obs.instrument import record_ossm_build
from ..obs.log import get_logger
from ..obs.metrics import get_registry
from ..obs.trace import trace
from .loss import pair_bound_sum
from .ossm import OSSM

__all__ = ["SegmentationResult", "Segmenter", "MergeState", "as_page_matrix"]

logger = get_logger(__name__)


def as_page_matrix(
    source: PagedDatabase | np.ndarray,
) -> tuple[np.ndarray, np.ndarray | None]:
    """Normalize a segmentation input to ``(page_matrix, page_sizes)``."""
    if isinstance(source, PagedDatabase):
        return source.page_supports(), source.page_lengths()
    matrix = np.asarray(source, dtype=np.int64)
    if matrix.ndim != 2:
        raise ValueError("page matrix must be 2-D (pages x items)")
    return matrix, None


@dataclass(frozen=True)
class SegmentationResult:
    """Outcome of one segmentation run.

    Attributes
    ----------
    groups:
        Page indices merged into each final segment.
    ossm:
        The OSSM realized by the grouping.
    algorithm:
        Human-readable algorithm name (e.g. ``"greedy"``,
        ``"random-rc"``).
    elapsed_seconds:
        Wall-clock segmentation time — the paper's "segmentation cost".
    loss_evaluations:
        Number of Equation (2) pair evaluations performed; the
        machine-independent cost counted by the paper's complexity
        analysis (0 for Random).
    """

    groups: list[list[int]]
    ossm: OSSM
    algorithm: str
    elapsed_seconds: float
    loss_evaluations: int

    @property
    def n_segments(self) -> int:
        """Number of final segments."""
        return len(self.groups)


class MergeState:
    """Live segments during a run: rows, page groups, and cached ``f``.

    Segment handles are integers; merging retires both operands and
    allocates a fresh handle, so stale priority-queue entries are
    recognizably dead (the lazy-deletion pattern the Greedy heap needs).
    """

    def __init__(
        self,
        page_matrix: np.ndarray,
        items: Sequence[int] | None = None,
    ) -> None:
        page_matrix = np.asarray(page_matrix, dtype=np.int64)
        self._items = (
            np.asarray(items, dtype=np.int64) if items is not None else None
        )
        self.rows: dict[int, np.ndarray] = {
            i: page_matrix[i].copy() for i in range(page_matrix.shape[0])
        }
        self.groups: dict[int, list[int]] = {
            i: [i] for i in range(page_matrix.shape[0])
        }
        self._next_id = page_matrix.shape[0]
        self._f: dict[int, int] = {}
        self.loss_evaluations = 0

    # -- loss ------------------------------------------------------------

    def _restricted(self, row: np.ndarray) -> np.ndarray:
        return row if self._items is None else row[self._items]

    def f_value(self, seg: int) -> int:
        """Cached ``f(row)`` (sum of pair minima) for a live segment."""
        value = self._f.get(seg)
        if value is None:
            value = pair_bound_sum(self._restricted(self.rows[seg]))
            self._f[seg] = value
        return value

    def loss(self, a: int, b: int) -> int:
        """Equation (2) loss of merging live segments *a* and *b*."""
        self.loss_evaluations += 1
        merged = pair_bound_sum(
            self._restricted(self.rows[a]) + self._restricted(self.rows[b])
        )
        return merged - self.f_value(a) - self.f_value(b)

    # -- merging -----------------------------------------------------------

    def merge(self, a: int, b: int) -> int:
        """Merge live segments *a* and *b*; return the new handle."""
        if a == b:
            raise ValueError("cannot merge a segment with itself")
        new = self._next_id
        self._next_id += 1
        self.rows[new] = self.rows[a] + self.rows[b]
        self.groups[new] = self.groups[a] + self.groups[b]
        for old in (a, b):
            del self.rows[old]
            del self.groups[old]
            self._f.pop(old, None)
        return new

    def alive(self, seg: int) -> bool:
        """True while *seg* has not been merged away."""
        return seg in self.rows

    @property
    def n_segments(self) -> int:
        """Number of live segments."""
        return len(self.rows)

    def segment_ids(self) -> list[int]:
        """Live segment handles in creation order."""
        return sorted(self.rows)

    # -- finalization ------------------------------------------------------

    def final_groups(self) -> list[list[int]]:
        """Page groups of the live segments, pages sorted within groups."""
        return [sorted(self.groups[seg]) for seg in self.segment_ids()]

    def final_matrix(self) -> np.ndarray:
        """Segment-support rows of the live segments (full item domain)."""
        return np.vstack([self.rows[seg] for seg in self.segment_ids()])


class Segmenter(abc.ABC):
    """Interface shared by Random, RC, Greedy, and the hybrids.

    Subclasses implement :meth:`_reduce`, which merges a
    :class:`MergeState` down to ``n_user`` live segments. The public
    :meth:`segment` handles input normalization, the trivial
    ``n_user >= P`` case, timing, and OSSM realization.
    """

    #: Human-readable name used in results and reports.
    name: str = "abstract"

    def __init__(self, items: Sequence[int] | None = None) -> None:
        self.items = list(items) if items is not None else None

    @abc.abstractmethod
    def _reduce(self, state: MergeState, n_user: int) -> None:
        """Merge segments in *state* until ``state.n_segments == n_user``."""

    def segment(
        self,
        source: PagedDatabase | np.ndarray,
        n_segments: int | None = None,
        **removed: int,
    ) -> SegmentationResult:
        """Partition the pages of *source* into *n_segments* segments.

        ``n_user`` (the paper's name for the segment budget) was a
        deprecated keyword alias of ``n_segments`` through PR 8; the
        alias is now removed.
        """
        if removed:
            unknown = ", ".join(sorted(removed))
            hint = (
                " (n_user= was removed after a 5-PR deprecation cycle; "
                "pass n_segments= instead)"
                if "n_user" in removed
                else ""
            )
            raise TypeError(
                f"segment() got unexpected keyword argument(s): "
                f"{unknown}{hint}"
            )
        if n_segments is None:
            raise TypeError(
                "segment() missing required argument: 'n_segments'"
            )
        n_user = int(n_segments)
        page_matrix, page_sizes = as_page_matrix(source)
        n_pages = page_matrix.shape[0]
        if n_user < 1:
            raise ValueError("n_segments must be >= 1")
        if n_pages == 0:
            raise ValueError("cannot segment an empty collection")
        start = time.perf_counter()
        with trace(
            f"segment.{self.name}", n_pages=n_pages, n_user=n_user
        ):
            state = MergeState(page_matrix, items=self.items)
            if n_user < n_pages:
                self._reduce(state, n_user)
        elapsed = time.perf_counter() - start
        groups = state.final_groups()
        sizes = None
        if page_sizes is not None:
            sizes = [int(sum(page_sizes[p] for p in g)) for g in groups]
        ossm = OSSM(state.final_matrix(), segment_sizes=sizes)
        record_ossm_build(ossm, algorithm=self.name)
        metrics = get_registry()
        if metrics.enabled:
            metrics.set_gauge(
                "segmentation.loss_evaluations", state.loss_evaluations
            )
            metrics.timer("segmentation.seconds").observe(elapsed)
        logger.info(
            "%s: %d pages -> %d segments in %.3fs (%d loss evaluations)",
            self.name, n_pages, len(groups), elapsed,
            state.loss_evaluations,
        )
        return SegmentationResult(
            groups=groups,
            ossm=ossm,
            algorithm=self.name,
            elapsed_seconds=elapsed,
            loss_evaluations=state.loss_evaluations,
        )
