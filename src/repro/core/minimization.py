"""The segment minimization problem (Section 4, Theorem 1, Corollary 1).

How many segments does an OSSM need for the Equation (1) bound to be
*exact* for every itemset? Theorem 1: if the collection may be
rearranged, ``n_min = min(N, 2^m − m)`` — the number of segments with
distinct configurations. The counting argument: a transaction's
configuration is determined by its itemset, the ``2^m − 1`` non-empty
itemsets yield ``2^m − 1`` candidate configurations, and exactly the
``m`` canonical-prefix itemsets ``{x1}, {x1,x2}, …, {x1,…,xm}`` collide
on the identity configuration, leaving ``2^m − m`` distinct ones
(counting the empty transaction's configuration among them).

Corollary 1 lifts the result to page granularity: starting from ``P``
pages, exactness *relative to the page-level map* needs
``min(P, 2^m − m)`` segments — group pages by configuration.

This module provides the bound, the exact minimizers (transaction and
page versions), an exactness verifier used heavily in tests, and the
Example 4 segmentation-count (Stirling numbers of the second kind).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from itertools import chain, combinations
from collections.abc import Iterable, Sequence

import numpy as np

from ..data.pages import PagedDatabase
from ..data.transactions import TransactionDatabase
from .configuration import group_by_configuration
from .ossm import OSSM

__all__ = [
    "n_min_bound",
    "MinimizationResult",
    "minimize_transactions",
    "minimize_pages",
    "is_exact",
    "max_bound_error",
    "count_segmentations",
]


def n_min_bound(n_units: int, n_items: int) -> int:
    """Theorem 1 / Corollary 1 worst-case ``n_min``: ``min(N, 2^m − m)``.

    *n_units* is the number of transactions (Theorem 1) or pages
    (Corollary 1); *n_items* is ``m``.
    """
    if n_units < 0 or n_items < 0:
        raise ValueError("counts must be non-negative")
    return min(n_units, 2**n_items - n_items) if n_items else min(n_units, 1)


@dataclass(frozen=True)
class MinimizationResult:
    """Outcome of an exact minimization.

    Attributes
    ----------
    ossm:
        The minimal exact OSSM.
    groups:
        Which input units (transactions or pages) each segment merges.
    n_min:
        Number of segments actually needed for this collection — at
        most the Theorem 1 worst case, usually far less.
    """

    ossm: OSSM
    groups: list[list[int]]
    n_min: int


def minimize_transactions(
    database: TransactionDatabase,
) -> MinimizationResult:
    """Exact minimal OSSM at transaction granularity (Theorem 1).

    Transactions are grouped by configuration — at this granularity,
    by identical itemset — and each group becomes one segment. The
    resulting bound equals the true support for every itemset.
    """
    matrix = np.zeros((len(database), database.n_items), dtype=np.int64)
    for tid, txn in enumerate(database):
        matrix[tid, list(txn)] = 1
    groups = group_by_configuration(matrix)
    rows = (
        np.vstack([matrix[list(g)].sum(axis=0) for g in groups])
        if groups
        else np.zeros((0, database.n_items), dtype=np.int64)
    )
    ossm = OSSM(rows, segment_sizes=[len(g) for g in groups])
    return MinimizationResult(ossm=ossm, groups=groups, n_min=len(groups))


def minimize_pages(paged: PagedDatabase) -> MinimizationResult:
    """Exact minimal OSSM at page granularity (Corollary 1).

    Pages with equal configurations merge without loss relative to the
    initial ``P``-segment page map (Lemma 1); the result is the fewest
    segments whose bound matches the page-level bound for every itemset.
    """
    page_matrix = paged.page_supports()
    groups = group_by_configuration(page_matrix)
    rows = np.vstack([page_matrix[list(g)].sum(axis=0) for g in groups])
    lengths = paged.page_lengths()
    sizes = [int(sum(lengths[p] for p in g)) for g in groups]
    return MinimizationResult(
        ossm=OSSM(rows, segment_sizes=sizes),
        groups=groups,
        n_min=len(groups),
    )


def _all_itemsets(n_items: int, max_size: int | None) -> Iterable[tuple[int, ...]]:
    sizes = range(1, (max_size or n_items) + 1)
    return chain.from_iterable(
        combinations(range(n_items), size) for size in sizes
    )


def is_exact(
    ossm: OSSM,
    database: TransactionDatabase,
    itemsets: Sequence[Sequence[int]] | None = None,
    max_size: int | None = None,
) -> bool:
    """True iff the Equation (1) bound equals the true support.

    Checks the given *itemsets*, or — exhaustively — every non-empty
    itemset up to *max_size* (default: all ``2^m − 1``; only sensible
    for small ``m``).
    """
    return max_bound_error(ossm, database, itemsets, max_size) == 0


def max_bound_error(
    ossm: OSSM,
    database: TransactionDatabase,
    itemsets: Sequence[Sequence[int]] | None = None,
    max_size: int | None = None,
) -> int:
    """Largest ``bound − support`` over the checked itemsets (0 = exact)."""
    if itemsets is None:
        itemsets = list(_all_itemsets(database.n_items, max_size))
    worst = 0
    for itemset in itemsets:
        gap = ossm.upper_bound(itemset) - database.support(itemset)
        if gap < 0:
            raise AssertionError(
                f"bound below true support for {tuple(itemset)} — "
                "the OSSM does not describe this database"
            )
        worst = max(worst, gap)
    return worst


@lru_cache(maxsize=None)
def _stirling2(n: int, k: int) -> int:
    if k == 0:
        return 1 if n == 0 else 0
    if k > n:
        return 0
    if k == n or k == 1:
        return 1
    return k * _stirling2(n - 1, k) + _stirling2(n - 1, k - 1)


def count_segmentations(n_pages: int, n_segments: int) -> int:
    """Number of ways to form *n_segments* segments from *n_pages* pages.

    Example 4 of the paper: ``(5, 3) → 25``, ``(6, 3) → 90``,
    ``(7, 3) → 301`` — the Stirling numbers of the second kind
    ``S(P, n_user)`` (segments are unlabeled, pages distinguishable,
    no segment empty).
    """
    if n_pages < 0 or n_segments < 0:
        raise ValueError("counts must be non-negative")
    return _stirling2(n_pages, n_segments)
