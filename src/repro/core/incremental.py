"""Online OSSM maintenance for growing collections.

The OSSM's ancestor, the plain SSM, was built for *online* mining with
Carma (the paper's references [9, 10]): transactions keep arriving and
the structure must stay current without re-running segmentation from
scratch. This module provides that operational layer:

* :class:`StreamingOSSMBuilder` — consume pages as they arrive; each
  new page either opens a segment (while under the budget) or merges
  into the existing segment that minimizes the Equation (2) loss — the
  streaming analogue of RC's "closest" rule;
* :func:`extend_ossm` — batch append: new data becomes fresh segments
  next to an existing map (loss-free; the bound can only stay sound),
  optionally re-coarsened back to the budget.

Soundness is unconditional: every operation only ever *sums* support
rows, so Equation (1) remains a valid upper bound for the grown
collection at every point.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..data.pages import PagedDatabase
from ..data.transactions import TransactionDatabase
from .greedy import GreedySegmenter
from .loss import merge_loss
from .ossm import OSSM

__all__ = ["StreamingOSSMBuilder", "extend_ossm"]


class StreamingOSSMBuilder:
    """Build and maintain an OSSM over an unbounded page stream.

    Parameters
    ----------
    n_items:
        Item-domain size (fixed up front; streams do not grow ``m``).
    max_segments:
        The segment budget (``n_user``).
    items:
        Optional bubble list restricting the loss computation.
    """

    def __init__(
        self,
        n_items: int,
        max_segments: int,
        items: Sequence[int] | None = None,
    ) -> None:
        if n_items < 1:
            raise ValueError("n_items must be >= 1")
        if max_segments < 1:
            raise ValueError("max_segments must be >= 1")
        self.n_items = int(n_items)
        self.max_segments = int(max_segments)
        self._items = (
            np.asarray(items, dtype=np.int64) if items is not None else None
        )
        self._rows: list[np.ndarray] = []
        self._sizes: list[int] = []
        self.pages_consumed = 0
        self.loss_evaluations = 0
        #: Ingestion epoch: bumped on every mutation of the held rows,
        #: and stamped onto every :meth:`ossm` snapshot so consumers
        #: (the serving layer's bound cache) can detect staleness.
        self.epoch = 0

    # -- ingestion ---------------------------------------------------------

    def add_page_row(self, row: np.ndarray, size: int = 0) -> int:
        """Ingest one page-support row; return the segment it joined."""
        row = np.asarray(row, dtype=np.int64)
        if row.shape != (self.n_items,):
            raise ValueError(
                f"row must have shape ({self.n_items},), got {row.shape}"
            )
        if row.size and row.min() < 0:
            raise ValueError("supports must be non-negative")
        self.pages_consumed += 1
        self.epoch += 1
        if len(self._rows) < self.max_segments:
            self._rows.append(row.copy())
            self._sizes.append(int(size))
            return len(self._rows) - 1
        restricted = row if self._items is None else row[self._items]
        best, best_loss = 0, None
        for index, existing in enumerate(self._rows):
            other = (
                existing if self._items is None else existing[self._items]
            )
            loss = merge_loss(other, restricted)
            self.loss_evaluations += 1
            if best_loss is None or loss < best_loss:
                best, best_loss = index, loss
        self._rows[best] = self._rows[best] + row
        self._sizes[best] += int(size)
        return best

    def add_page(self, page: TransactionDatabase) -> int:
        """Ingest one page of transactions."""
        row = np.zeros(self.n_items, dtype=np.int64)
        supports = page.item_supports()
        row[: len(supports)] = supports
        return self.add_page_row(row, size=len(page))

    def absorb(self, database: TransactionDatabase, page_size: int = 100) -> None:
        """Ingest a whole database, page by page."""
        paged = PagedDatabase(database, page_size=page_size)
        for page in paged:
            if len(page):
                self.add_page(page)

    # -- state -------------------------------------------------------------

    @property
    def n_segments(self) -> int:
        """Segments currently held (≤ the budget)."""
        return len(self._rows)

    def ossm(self) -> OSSM:
        """Snapshot the current map (cheap; copies the rows).

        The snapshot carries the builder's current :attr:`epoch`, so
        two snapshots straddling an ingestion are distinguishable by a
        single integer comparison.
        """
        if not self._rows:
            raise ValueError("no pages ingested yet")
        return OSSM(
            np.vstack(self._rows),
            segment_sizes=self._sizes,
            epoch=self.epoch,
        )


def extend_ossm(
    ossm: OSSM,
    new_data: TransactionDatabase,
    page_size: int = 100,
    recoarsen_to: int | None = None,
) -> OSSM:
    """Append *new_data* to an existing map as fresh segments.

    Appending whole segments is loss-free (no merge happens), so the
    extended map is exactly as tight on old itemset bounds and tighter
    than any single-segment summary of the new data. When
    *recoarsen_to* is given, the grown map is merged back down to that
    many segments with the Greedy rule.

    The returned map's :attr:`~repro.core.ossm.OSSM.epoch` is the
    input's epoch plus one — the collection grew, so any bound cached
    against the old map is now potentially unsound for the grown
    collection and must be invalidated (DESIGN.md §10).
    """
    if new_data.n_items > ossm.n_items:
        raise ValueError(
            "new data introduces items beyond the map's domain"
        )
    paged = PagedDatabase(new_data, page_size=page_size)
    rows = [ossm.matrix]
    sizes = list(ossm.segment_sizes or [0] * ossm.n_segments)
    new_rows = np.zeros((paged.n_pages, ossm.n_items), dtype=np.int64)
    supports = paged.page_supports()
    new_rows[:, : supports.shape[1]] = supports
    rows.append(new_rows)
    sizes.extend(int(n) for n in paged.page_lengths())
    grown = OSSM(
        np.vstack(rows), segment_sizes=sizes, epoch=ossm.epoch + 1
    )
    if recoarsen_to is None or grown.n_segments <= recoarsen_to:
        return grown
    result = GreedySegmenter().segment(grown.matrix, recoarsen_to)
    merged = grown.merge_segments(result.groups)
    return merged
