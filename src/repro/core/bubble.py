"""The bubble list optimization (Section 5.3 of the paper).

Loss-guided segmentation (RC, Greedy) pays an ``m²`` factor because
Equation (2) sums over all item pairs. The bubble list kills that
factor: restrict the summation to the ``b`` items "on the bubble" —
those whose frequencies *barely satisfy, and are the closest to*, a
reference support threshold. Those are exactly the items for which the
OSSM's pruning matters: items far above the threshold are never pruned
and items far below never become candidates.

The bubble list is built from one reference threshold but the resulting
OSSM remains usable at *any* threshold (Section 6.3 evaluates a bubble
built at 0.25 % and queried at 1 %).
"""

from __future__ import annotations

import numpy as np

from ..data.pages import PagedDatabase
from ..data.transactions import TransactionDatabase
from ..obs.metrics import get_registry

__all__ = ["bubble_list", "bubble_list_for"]


def bubble_list(
    item_supports: np.ndarray,
    n_transactions: int,
    threshold: float,
    size: int,
) -> np.ndarray:
    """Select the *size* items on the bubble of *threshold*.

    Parameters
    ----------
    item_supports:
        Global singleton supports (absolute counts).
    n_transactions:
        Collection size ``N`` (to scale the relative threshold).
    threshold:
        Reference relative support threshold in ``(0, 1]``.
    size:
        Number of items to keep (``b`` in the paper). Clamped to ``m``.

    Returns
    -------
    Sorted array of item ids: the satisfying items closest above the
    threshold first; if fewer than *size* items satisfy the threshold,
    the list is padded with the items closest *below* it, so the
    requested size is always honoured when the domain allows.
    """
    if not 0.0 < threshold <= 1.0:
        raise ValueError("threshold must lie in (0, 1]")
    if size < 1:
        raise ValueError("bubble size must be >= 1")
    supports = np.asarray(item_supports, dtype=np.int64)
    m = supports.shape[0]
    size = min(size, m)
    min_count = threshold * n_transactions
    satisfying = np.flatnonzero(supports >= min_count)
    failing = np.flatnonzero(supports < min_count)
    # Barely-satisfying first: ascending support among satisfiers.
    satisfying = satisfying[np.argsort(supports[satisfying], kind="stable")]
    # Padding: closest below, i.e. descending support among failers.
    failing = failing[np.argsort(-supports[failing], kind="stable")]
    chosen = np.concatenate([satisfying, failing])[:size]
    metrics = get_registry()
    if metrics.enabled:
        metrics.inc("bubble.builds")
        metrics.set_gauge("bubble.size", len(chosen))
        metrics.set_gauge("bubble.satisfying_items", len(satisfying))
    return np.sort(chosen)


def bubble_list_for(
    source: TransactionDatabase | PagedDatabase,
    threshold: float,
    size: int,
) -> np.ndarray:
    """Convenience wrapper: build a bubble list straight from a database."""
    if isinstance(source, PagedDatabase):
        supports = source.item_supports()
        n = len(source.database)
    else:
        supports = source.item_supports()
        n = len(source)
    return bubble_list(supports, n, threshold, size)
