"""The cumulative accuracy loss of merging segments (Equation 2).

For a set ``S`` of segments, the paper quantifies the sub-optimality of
collapsing them into one segment as::

    cumuLoss(S) = sum over item pairs {x, y} of
        sup_hat({x,y}, Omega_1)  -  sup_hat({x,y}, Omega_|S|)

i.e. the total loosening of the pair bounds. Lemma 2: the quantity is
zero iff all segments share a configuration, positive otherwise, and
monotone under adding segments.

Two evaluators are provided:

* :func:`pair_bound_sum_naive` / the ``*_naive`` entry points — the
  paper-literal ``O(m²)`` double loop over item pairs;
* :func:`pair_bound_sum` — an ``O(m log m)`` sort identity. For a
  support vector ``u`` sorted ascending, each ``u_(k)`` is the minimum
  of exactly ``m − 1 − k`` pairs (those pairing it with a larger-ranked
  item), so ``Σ_{x<y} min(u_x, u_y) = Σ_k u_(k) · (m − 1 − k)``.

Writing ``f(u) = Σ_{x<y} min(u_x, u_y)``, Equation (2) factorizes as
``cumuLoss(S) = f(Σ_{s∈S} s) − Σ_{s∈S} f(s)`` — the merged bound minus
the separated bounds, summed over pairs. Both evaluators implement the
same mathematical function; tests assert exact agreement, and every
algorithmic decision (which pair Greedy merges, which neighbour RC
picks) is identical under either.

All functions accept an optional *items* restriction — the bubble-list
optimization of Section 5.3 — which replaces the ``m²`` pair space by
``b²`` for a bubble list of ``b`` items.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = [
    "pair_bound_sum",
    "pair_bound_sum_naive",
    "merge_loss",
    "merge_loss_naive",
    "cumulative_loss",
    "cumulative_loss_naive",
    "pairwise_merge_losses",
]


def _restrict(u: np.ndarray, items: Sequence[int] | None) -> np.ndarray:
    u = np.asarray(u, dtype=np.int64)
    if u.ndim != 1:
        raise ValueError("support vector must be 1-D")
    if items is None:
        return u
    return u[np.asarray(items, dtype=np.int64)]


def pair_bound_sum(
    u: np.ndarray, items: Sequence[int] | None = None
) -> int:
    """``f(u) = Σ_{x<y} min(u_x, u_y)`` via the O(m log m) sort identity."""
    u = _restrict(u, items)
    m = u.shape[0]
    if m < 2:
        return 0
    ascending = np.sort(u)
    weights = np.arange(m - 1, -1, -1, dtype=np.int64)
    return int(np.dot(ascending, weights))


def pair_bound_sum_naive(
    u: np.ndarray, items: Sequence[int] | None = None
) -> int:
    """``f(u)`` by the paper-literal double loop (reference implementation)."""
    u = _restrict(u, items)
    total = 0
    m = u.shape[0]
    for x in range(m):
        for y in range(x + 1, m):
            total += int(min(u[x], u[y]))
    return total


def merge_loss(
    a: np.ndarray,
    b: np.ndarray,
    items: Sequence[int] | None = None,
) -> int:
    """Equation (2) loss of merging two segments: ``f(a+b) − f(a) − f(b)``.

    Zero iff ``a`` and ``b`` share a configuration on the restricted
    item set (Lemma 2a/2b); always non-negative.
    """
    a = _restrict(a, items)
    b = _restrict(b, items)
    if a.shape != b.shape:
        raise ValueError("segment rows must have equal length")
    return (
        pair_bound_sum(a + b) - pair_bound_sum(a) - pair_bound_sum(b)
    )


def merge_loss_naive(
    a: np.ndarray,
    b: np.ndarray,
    items: Sequence[int] | None = None,
) -> int:
    """Paper-literal Equation (2) for two segments (explicit pair loop)."""
    a = _restrict(a, items)
    b = _restrict(b, items)
    if a.shape != b.shape:
        raise ValueError("segment rows must have equal length")
    total = 0
    m = a.shape[0]
    for x in range(m):
        for y in range(x + 1, m):
            merged = min(int(a[x] + b[x]), int(a[y] + b[y]))
            separated = min(int(a[x]), int(a[y])) + min(int(b[x]), int(b[y]))
            total += merged - separated
    return total


def cumulative_loss(
    rows: np.ndarray, items: Sequence[int] | None = None
) -> int:
    """``cumuLoss(S)`` for a stack of segment rows (Equation 2).

    ``rows`` is a ``k × m`` matrix whose rows are the segments of ``S``.
    """
    rows = np.asarray(rows, dtype=np.int64)
    if rows.ndim != 2:
        raise ValueError("rows must be a 2-D matrix (segments x items)")
    if items is not None:
        rows = rows[:, np.asarray(items, dtype=np.int64)]
    merged = pair_bound_sum(rows.sum(axis=0))
    separated = sum(pair_bound_sum(row) for row in rows)
    return int(merged - separated)


def cumulative_loss_naive(
    rows: np.ndarray, items: Sequence[int] | None = None
) -> int:
    """Paper-literal ``cumuLoss(S)``: explicit sum over item pairs."""
    rows = np.asarray(rows, dtype=np.int64)
    if rows.ndim != 2:
        raise ValueError("rows must be a 2-D matrix (segments x items)")
    if items is not None:
        rows = rows[:, np.asarray(items, dtype=np.int64)]
    k, m = rows.shape
    total = 0
    column_sums = rows.sum(axis=0)
    for x in range(m):
        for y in range(x + 1, m):
            merged = min(int(column_sums[x]), int(column_sums[y]))
            separated = sum(
                min(int(rows[i, x]), int(rows[i, y])) for i in range(k)
            )
            total += merged - separated
    return total


def pairwise_merge_losses(
    rows: np.ndarray, items: Sequence[int] | None = None
) -> np.ndarray:
    """Matrix of :func:`merge_loss` for every pair of rows.

    Entry ``(i, j)`` is the loss of merging segments ``i`` and ``j``;
    the diagonal is 0. Used to seed the Greedy priority queue; computed
    with the sort identity per pair, so ``O(k² · b log b)`` overall for
    ``k`` segments and ``b`` (bubble-restricted) items.
    """
    rows = np.asarray(rows, dtype=np.int64)
    if rows.ndim != 2:
        raise ValueError("rows must be a 2-D matrix (segments x items)")
    if items is not None:
        rows = rows[:, np.asarray(items, dtype=np.int64)]
    k = rows.shape[0]
    f_values = np.array(
        [pair_bound_sum(row) for row in rows], dtype=np.int64
    )
    losses = np.zeros((k, k), dtype=np.int64)
    for i in range(k):
        for j in range(i + 1, k):
            loss = (
                pair_bound_sum(rows[i] + rows[j])
                - int(f_values[i])
                - int(f_values[j])
            )
            losses[i, j] = losses[j, i] = loss
    return losses
