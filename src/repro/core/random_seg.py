"""The Random segmentation algorithm (Section 5.2 of the paper).

Random merges arbitrary segments — no Equation (2) evaluation at all —
so it runs in ``O(P)`` and serves two roles in the paper: the cost
baseline against which RC/Greedy must justify themselves, and the fast
first phase of the hybrid strategies. It also coincides with the plain
SSM construction of the earlier case study ([10]): an arbitrary/random
partition of the pages into ``n_user`` segments.
"""

from __future__ import annotations

import numpy as np

from .segmentation import MergeState, Segmenter

__all__ = ["RandomSegmenter"]


class RandomSegmenter(Segmenter):
    """Partition pages into ``n_user`` segments uniformly at random.

    Pages are shuffled and dealt into ``n_user`` buckets of near-equal
    size, guaranteeing every segment is non-empty. Deterministic given
    *seed*. Performs zero loss evaluations.
    """

    name = "random"

    def __init__(self, seed: int = 0, items=None) -> None:
        super().__init__(items=items)
        self.seed = seed

    def _reduce(self, state: MergeState, n_user: int) -> None:
        rng = np.random.default_rng(self.seed)
        ids = state.segment_ids()
        order = rng.permutation(len(ids))
        buckets = np.array_split(order, n_user)
        for bucket in buckets:
            survivor = ids[int(bucket[0])]
            for index in bucket[1:]:
                survivor = state.merge(survivor, ids[int(index)])
