"""The Optimized Segment Support Map (OSSM) structure.

An OSSM over a collection partitioned into ``n`` segments stores the
per-segment support of every *singleton* item — an ``n × m`` integer
matrix. For an arbitrary itemset ``X`` it yields the Equation (1) upper
bound on support::

    sup_hat(X, Omega_n) = sum_i  min_{x in X} sup_i({x})

which is sound (``>=`` the true support) by monotonicity and collapses
to the classic "min of global item supports" bound at ``n = 1``. More
segments can only tighten the bound (refinement monotonicity), and at
one-transaction-per-segment it is exact.

The OSSM is *query-independent*: built once at compile time, usable at
any support threshold — unlike DHP's hash table or the FP-tree.
"""

from __future__ import annotations

import os
from collections.abc import Iterable, Sequence

import numpy as np

from ..data.pages import PagedDatabase
from ..data.transactions import TransactionDatabase
from ..resilience import CorruptArtifact, atomic_savez, verified_load_npz

__all__ = ["OSSM", "build_from_pages", "build_from_database"]

#: Cell width (bytes) used for the paper's storage accounting. The
#: paper's sizes (0.2 MB at 100 segments x 1000 items) correspond to
#: 2-byte cells.
NOMINAL_CELL_BYTES = 2


class OSSM:
    """Segment support map: ``n_segments × n_items`` singleton supports.

    Instances are immutable; all mutating operations return new maps.

    Parameters
    ----------
    segment_supports:
        Integer matrix; row ``i``, column ``x`` is ``sup_i({x})``, the
        support of item ``x`` inside segment ``i``.
    segment_sizes:
        Optional per-segment transaction counts. Used only for
        reporting; ``None`` if unknown.
    epoch:
        Ingestion epoch of the map (default 0). Every operation that
        grows the underlying collection — ``extend_ossm``, a
        :class:`~repro.core.incremental.StreamingOSSMBuilder` snapshot
        — produces a map with a strictly larger epoch, so downstream
        caches (the serving layer's bound cache) can detect staleness
        with a single integer comparison. Pure reshapes of the *same*
        collection (``merge_segments``, ``restrict_items``) inherit
        the epoch unchanged. The epoch never participates in
        ``__eq__``: two maps over identical data are equal regardless
        of ingestion history.
    """

    def __init__(
        self,
        segment_supports: np.ndarray,
        segment_sizes: Sequence[int] | None = None,
        epoch: int = 0,
    ) -> None:
        matrix = np.asarray(segment_supports)
        if matrix.ndim != 2:
            raise ValueError("segment_supports must be a 2-D matrix")
        if matrix.size and matrix.min() < 0:
            raise ValueError("segment supports must be non-negative")
        if not np.issubdtype(matrix.dtype, np.integer):
            if not np.all(matrix == matrix.astype(np.int64)):
                raise ValueError("segment supports must be integral")
        self._matrix = matrix.astype(np.int64, copy=True)
        self._matrix.setflags(write=False)
        if segment_sizes is not None:
            sizes = tuple(int(s) for s in segment_sizes)
            if len(sizes) != self._matrix.shape[0]:
                raise ValueError("segment_sizes length must equal n_segments")
            self._sizes: tuple[int, ...] | None = sizes
        else:
            self._sizes = None
        if epoch < 0:
            raise ValueError("epoch must be non-negative")
        self._epoch = int(epoch)

    # -- construction ------------------------------------------------------

    @classmethod
    def from_segments(cls, segments: Iterable[TransactionDatabase]) -> "OSSM":
        """Build an OSSM whose segments are the given databases."""
        segments = list(segments)
        if not segments:
            raise ValueError("need at least one segment")
        n_items = max(segment.n_items for segment in segments)
        rows = np.zeros((len(segments), n_items), dtype=np.int64)
        for i, segment in enumerate(segments):
            supports = segment.item_supports()
            rows[i, : len(supports)] = supports
        return cls(rows, segment_sizes=[len(s) for s in segments])

    @classmethod
    def single_segment(cls, database: TransactionDatabase) -> "OSSM":
        """The degenerate 1-segment OSSM (global item supports only)."""
        return cls(
            database.item_supports()[np.newaxis, :],
            segment_sizes=[len(database)],
        )

    # -- shape -------------------------------------------------------------

    @property
    def n_segments(self) -> int:
        """Number of segments (``n`` in the paper)."""
        return self._matrix.shape[0]

    @property
    def n_items(self) -> int:
        """Size of the item domain (``m`` in the paper)."""
        return self._matrix.shape[1]

    @property
    def matrix(self) -> np.ndarray:
        """The (read-only) ``n × m`` segment-support matrix."""
        return self._matrix

    @property
    def segment_sizes(self) -> tuple[int, ...] | None:
        """Transactions per segment, if known."""
        return self._sizes

    @property
    def epoch(self) -> int:
        """Ingestion epoch; grows whenever the collection grows."""
        return self._epoch

    def __repr__(self) -> str:
        return f"OSSM({self.n_segments} segments x {self.n_items} items)"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, OSSM):
            return NotImplemented
        return (
            self._matrix.shape == other._matrix.shape
            and bool(np.array_equal(self._matrix, other._matrix))
        )

    # -- storage accounting --------------------------------------------------

    def nbytes(self) -> int:
        """Actual in-memory size of the support matrix."""
        return int(self._matrix.nbytes)

    def nominal_size_bytes(self, cell_bytes: int = NOMINAL_CELL_BYTES) -> int:
        """Size under the paper's accounting (2-byte cells by default).

        At 100 segments × 1000 items this is ~0.2 MB, matching
        Section 6.2's "the OSSM consumes only about 0.2 megabytes".
        """
        return self.n_segments * self.n_items * cell_bytes

    # -- supports and bounds -------------------------------------------------

    def item_supports(self) -> np.ndarray:
        """Global singleton supports (exact; column sums)."""
        return self._matrix.sum(axis=0)

    def segment_support(self, segment: int, item: int) -> int:
        """``sup_segment({item})`` for one cell."""
        return int(self._matrix[segment, item])

    def upper_bound(self, itemset: Iterable[int]) -> int:
        """Equation (1) upper bound on the support of *itemset*.

        The empty itemset is contained in every transaction; its bound
        is the total transaction count when segment sizes are known and
        otherwise the best available surrogate (sum of per-segment max
        item supports).
        """
        items = list(itemset)
        if not items:
            if self._sizes is not None:
                return int(sum(self._sizes))
            return int(self._matrix.max(axis=1).sum()) if self.n_items else 0
        columns = self._matrix[:, items]
        return int(columns.min(axis=1).sum())

    def upper_bounds(self, itemsets: Sequence[Sequence[int]]) -> np.ndarray:
        """Vectorized Equation (1) bounds for many same-size itemsets.

        All itemsets must have the same cardinality (the common case:
        one Apriori level). Returns an int64 vector aligned with
        *itemsets*.
        """
        if not len(itemsets):
            return np.zeros(0, dtype=np.int64)
        candidates = np.asarray(itemsets, dtype=np.int64)
        if candidates.ndim != 2:
            raise ValueError("itemsets must all have the same cardinality")
        if candidates.shape[1] == 2:
            return self._pair_bounds(candidates)
        # (n_segments, n_candidates, k) -> min over k -> sum over segments
        per_segment = self._matrix[:, candidates].min(axis=2)
        return per_segment.sum(axis=0).astype(np.int64)

    def _pair_bounds(self, pairs: np.ndarray) -> np.ndarray:
        """Fast path for 2-itemsets — Apriori's dominant level.

        Per segment, ``min(p, q) = (p + q − |p − q|)/2``, so the pair
        bound is ``(sup(x) + sup(y) − L1(col_x, col_y)) / 2``. The L1
        distances of all distinct item columns involved are computed in
        one C-optimized ``pdist`` call, which is an order of magnitude
        faster than gathering per-candidate segment columns in numpy.
        """
        try:
            from scipy.spatial.distance import pdist, squareform
        except ImportError:  # pragma: no cover - scipy is a hard dep
            per_segment = self._matrix[:, pairs].min(axis=2)
            return per_segment.sum(axis=0).astype(np.int64)
        items, inverse = np.unique(pairs, return_inverse=True)
        if len(items) > 4096:  # keep the distance matrix bounded
            per_segment = self._matrix[:, pairs].min(axis=2)
            return per_segment.sum(axis=0).astype(np.int64)
        inverse = inverse.reshape(pairs.shape)
        # pdist computes in doubles; L1 distances of integer-valued
        # columns are exact for counts < 2**53, and the round trip back
        # to int64 below therefore loses nothing.
        columns = self._matrix[:, items].T.astype(np.float64)  # lint: skip=bound-float-cast
        distances = squareform(pdist(columns, metric="cityblock"))
        supports = self._matrix[:, items].sum(axis=0)
        a, b = inverse[:, 0], inverse[:, 1]
        # p + q − |p − q| is even, so // 2 divides exactly: the whole
        # bound stays in integer arithmetic (Equation (1) soundness).
        gathered = distances[a, b].astype(np.int64)
        return (supports[a] + supports[b] - gathered) // 2

    def prune(
        self, itemsets: Sequence[Sequence[int]], min_support: int
    ) -> tuple[list, np.ndarray]:
        """Split candidates into survivors and a keep-mask by bound.

        Returns ``(survivors, mask)`` where ``mask[i]`` is True iff the
        Equation (1) bound of ``itemsets[i]`` reaches *min_support* —
        i.e. the candidate still needs real frequency counting.
        """
        bounds = self.upper_bounds(itemsets)
        mask = bounds >= int(min_support)
        survivors = [
            itemset for itemset, keep in zip(itemsets, mask) if keep
        ]
        return survivors, mask

    # -- reshaping -----------------------------------------------------------

    def merge_segments(self, groups: Sequence[Sequence[int]]) -> "OSSM":
        """Coarsen: sum the rows of each group into a single segment.

        *groups* must partition ``range(n_segments)``. This is the
        Lemma 1 merge operation lifted to whole groups.
        """
        seen = sorted(i for group in groups for i in group)
        if seen != list(range(self.n_segments)):
            raise ValueError("groups must partition range(n_segments)")
        rows = np.vstack(
            [self._matrix[list(group)].sum(axis=0) for group in groups]
        )
        sizes = None
        if self._sizes is not None:
            sizes = [
                sum(self._sizes[i] for i in group) for group in groups
            ]
        return OSSM(rows, segment_sizes=sizes, epoch=self._epoch)

    def restrict_items(self, items: Sequence[int]) -> "OSSM":
        """Project the map onto a subset of item columns (bubble list)."""
        return OSSM(
            self._matrix[:, list(items)],
            segment_sizes=self._sizes,
            epoch=self._epoch,
        )

    # -- persistence -----------------------------------------------------

    def save(self, path: str | os.PathLike) -> None:
        """Persist the map as a compressed ``.npz`` archive.

        Written atomically (temp + fsync + rename) with an embedded
        format version and CRC32, so :meth:`load` can tell a damaged
        file from a valid one and a crash mid-save can never leave a
        torn archive at *path*.
        """
        payload: dict[str, np.ndarray] = {"matrix": self._matrix}
        if self._sizes is not None:
            payload["sizes"] = np.asarray(self._sizes, dtype=np.int64)
        if self._epoch:
            payload["epoch"] = np.asarray(self._epoch, dtype=np.int64)
        atomic_savez(path, payload, kind="ossm", fault_base="io.ossm")

    @classmethod
    def load(cls, path: str | os.PathLike) -> "OSSM":
        """Load a map written by :meth:`save`.

        Raises :class:`~repro.resilience.errors.CorruptArtifact` on
        damaged bytes and
        :class:`~repro.resilience.errors.IntegrityError` on a wrong
        artifact kind or future format version; archives written before
        the integrity format still load.
        """
        payload = verified_load_npz(path, kind="ossm")
        if "matrix" not in payload:
            raise CorruptArtifact(path, "missing 'matrix' array")
        matrix = payload["matrix"]
        sizes = payload.get("sizes")
        epoch = int(payload["epoch"]) if "epoch" in payload else 0
        return cls(matrix, segment_sizes=sizes, epoch=epoch)


def build_from_pages(
    paged: PagedDatabase, groups: Sequence[Sequence[int]]
) -> OSSM:
    """Build an OSSM from a paged database and a page partition."""
    matrix = paged.segment_supports(groups)
    lengths = paged.page_lengths()
    sizes = [int(sum(lengths[p] for p in group)) for group in groups]
    return OSSM(matrix, segment_sizes=sizes)


def build_from_database(
    database: TransactionDatabase, boundaries: Sequence[int]
) -> OSSM:
    """Build an OSSM from contiguous transaction ranges.

    *boundaries* are cut points: ``[0, b1, ..., N]``; segment ``i`` holds
    transactions ``[boundaries[i], boundaries[i+1])``.
    """
    if list(boundaries) != sorted(boundaries):
        raise ValueError("boundaries must be non-decreasing")
    if not boundaries or boundaries[0] != 0 or boundaries[-1] != len(database):
        raise ValueError("boundaries must start at 0 and end at len(database)")
    segments = [
        database[lo:hi] for lo, hi in zip(boundaries, boundaries[1:])
    ]
    return OSSM.from_segments(segments)
