"""The Greedy segmentation algorithm (Figure 2 of the paper).

Seed a priority queue with the Equation (2) loss of every pair of
initial segments; repeatedly pop the minimum-loss pair, merge it, and
insert the losses of the merged segment against every survivor —
recomputation is unavoidable because a merge can produce a segment of a
*totally different* configuration (Example 3). Stops at ``n_user``
segments.

Complexity (paper, Section 5.2): ``O(P² m²)`` to seed plus
``O(P (m² + log P))`` per iteration → ``O(P² m² + P² log P)`` overall;
our sort-based loss evaluator turns each ``m²`` into ``m log m`` without
changing any merge decision (see :mod:`repro.core.loss`). The heap uses
lazy deletion: entries referring to retired segment handles are
discarded on pop, which implements Step 5 of Figure 2 ("remove all pairs
involving S_i or S_j") without an indexed queue.
"""

from __future__ import annotations

import heapq
from itertools import combinations

from ..obs.metrics import get_registry
from .segmentation import MergeState, Segmenter

__all__ = ["GreedySegmenter"]


class GreedySegmenter(Segmenter):
    """Merge the globally cheapest pair until ``n_user`` segments remain.

    Deterministic: ties on loss are broken by (older, older) segment
    handles, matching a stable priority queue.
    """

    name = "greedy"

    def _reduce(self, state: MergeState, n_user: int) -> None:
        metrics = get_registry()
        heap: list[tuple[int, int, int]] = []
        for a, b in combinations(state.segment_ids(), 2):
            heap.append((state.loss(a, b), a, b))
        heapq.heapify(heap)
        # Hot loop: bind the per-iteration attribute lookups once.
        heappop, heappush = heapq.heappop, heapq.heappush
        pair_loss = state.loss
        while state.n_segments > n_user:
            loss, a, b = heappop(heap)
            if not (state.alive(a) and state.alive(b)):
                if metrics.enabled:
                    metrics.inc("segmentation.greedy.stale_pops")
                continue  # stale entry: a participant was merged away
            merged = state.merge(a, b)
            pushes = 0
            for other in state.segment_ids():
                if other != merged:
                    heappush(heap, (pair_loss(merged, other), other, merged))
                    pushes += 1
            if metrics.enabled:
                metrics.inc("segmentation.greedy.merges")
                metrics.inc("segmentation.greedy.heap_pushes", pushes)
