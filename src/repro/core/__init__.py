"""OSSM core: the structure, its theory, and the segmentation algorithms.

* :mod:`repro.core.ossm` — the map and the Equation (1) bound;
* :mod:`repro.core.configuration` — segment configurations, Lemma 1;
* :mod:`repro.core.loss` — Equation (2) and its fast evaluator;
* :mod:`repro.core.minimization` — Theorem 1 / Corollary 1 (exact
  minimal segmentation);
* :mod:`repro.core.segmentation` + the algorithm modules — the
  constrained segmentation heuristics of Section 5;
* :mod:`repro.core.bubble` — the bubble-list optimization;
* :mod:`repro.core.recipe` — the Figure 7 strategy recommendation;
* :mod:`repro.core.generalized` — the footnote-3 higher-cardinality
  extension.
"""

from .bubble import bubble_list, bubble_list_for
from .configuration import (
    configuration,
    configurations,
    distinct_configurations,
    group_by_configuration,
    same_configuration,
)
from .generalized import GeneralizedOSSM
from .greedy import GreedySegmenter
from .hybrid import HybridSegmenter, RandomGreedySegmenter, RandomRCSegmenter
from .incremental import StreamingOSSMBuilder, extend_ossm
from .loss import (
    cumulative_loss,
    cumulative_loss_naive,
    merge_loss,
    merge_loss_naive,
    pair_bound_sum,
    pair_bound_sum_naive,
    pairwise_merge_losses,
)
from .minimization import (
    MinimizationResult,
    count_segmentations,
    is_exact,
    max_bound_error,
    minimize_pages,
    minimize_transactions,
    n_min_bound,
)
from .ossm import OSSM, build_from_database, build_from_pages
from .random_seg import RandomSegmenter
from .rc import RCSegmenter
from .recipe import RecipeInputs, recommend, recommended_segmenter
from .segmentation import MergeState, SegmentationResult, Segmenter

__all__ = [
    "bubble_list",
    "bubble_list_for",
    "configuration",
    "configurations",
    "distinct_configurations",
    "group_by_configuration",
    "same_configuration",
    "GeneralizedOSSM",
    "GreedySegmenter",
    "HybridSegmenter",
    "StreamingOSSMBuilder",
    "extend_ossm",
    "RandomGreedySegmenter",
    "RandomRCSegmenter",
    "cumulative_loss",
    "cumulative_loss_naive",
    "merge_loss",
    "merge_loss_naive",
    "pair_bound_sum",
    "pair_bound_sum_naive",
    "pairwise_merge_losses",
    "MinimizationResult",
    "count_segmentations",
    "is_exact",
    "max_bound_error",
    "minimize_pages",
    "minimize_transactions",
    "n_min_bound",
    "OSSM",
    "build_from_database",
    "build_from_pages",
    "RandomSegmenter",
    "RCSegmenter",
    "RecipeInputs",
    "recommend",
    "recommended_segmenter",
    "MergeState",
    "SegmentationResult",
    "Segmenter",
]
