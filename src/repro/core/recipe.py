"""The recommended recipe (Figure 7 and Section 6.4 of the paper).

A small decision procedure mapping an application's circumstances to a
segmentation strategy:

* large segment budget (``n_user``) **and** skewed data → **Random** is
  already sufficient (speedup comes cheap; no loss computation needed);
* otherwise, if segmentation cost is *not* an issue → **Greedy** (with
  the bubble list) builds the highest-quality OSSM;
* otherwise, with a very large initial page count ``P`` → **Random-RC**
  (cheapest elaborate hybrid);
* otherwise → **Random-Greedy**.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from .greedy import GreedySegmenter
from .hybrid import RandomGreedySegmenter, RandomRCSegmenter
from .random_seg import RandomSegmenter
from .segmentation import Segmenter

__all__ = ["RecipeInputs", "recommend", "recommended_segmenter"]

#: Default decision boundaries. The paper leaves "large" qualitative;
#: these defaults follow its experiments (n_user ≈ 150 is "a lot of
#: space", P = 50 000 is "very large").
LARGE_N_USER = 100
VERY_LARGE_P = 5000


@dataclass(frozen=True)
class RecipeInputs:
    """The circumstances Figure 7 branches on."""

    n_user: int
    n_pages: int
    data_is_skewed: bool
    segmentation_cost_matters: bool

    def __post_init__(self) -> None:
        if self.n_user < 1:
            raise ValueError("n_user must be >= 1")
        if self.n_pages < 1:
            raise ValueError("n_pages must be >= 1")


def recommend(
    inputs: RecipeInputs,
    large_n_user: int = LARGE_N_USER,
    very_large_p: int = VERY_LARGE_P,
) -> str:
    """Figure 7's decision tree; returns a strategy name.

    One of ``"random"``, ``"greedy"``, ``"random-rc"``,
    ``"random-greedy"``.
    """
    if inputs.n_user >= large_n_user and inputs.data_is_skewed:
        return "random"
    if not inputs.segmentation_cost_matters:
        return "greedy"
    if inputs.n_pages >= very_large_p:
        return "random-rc"
    return "random-greedy"


def recommended_segmenter(
    inputs: RecipeInputs,
    seed: int = 0,
    items: Sequence[int] | None = None,
    n_mid: int = 200,
    large_n_user: int = LARGE_N_USER,
    very_large_p: int = VERY_LARGE_P,
) -> Segmenter:
    """Instantiate the segmenter Figure 7 recommends for *inputs*.

    *items* should be a bubble list whenever an elaborate strategy is
    recommended (Section 6.4 pairs Greedy and the hybrids with the
    bubble list).
    """
    strategy = recommend(inputs, large_n_user, very_large_p)
    if strategy == "random":
        return RandomSegmenter(seed=seed, items=items)
    if strategy == "greedy":
        return GreedySegmenter(items=items)
    if strategy == "random-rc":
        return RandomRCSegmenter(n_mid=n_mid, seed=seed, items=items)
    return RandomGreedySegmenter(n_mid=n_mid, seed=seed, items=items)
