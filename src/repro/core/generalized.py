"""Generalized OSSM (footnote 3 of the paper).

Footnote 3 sketches an alternative way to tighten the Equation (1)
bound: "generalize the OSSM by storing not only the actual segment
supports of singleton patterns or itemsets, but also those of itemsets
of higher cardinalities". This module implements that extension: a map
from every itemset of size up to ``max_cardinality`` (that occurs at
all) to its per-segment support vector. The bound becomes::

    sup_hat_k(X) = sum_i  min over subsets S of X, |S| = min(k, |X|)
                          of sup_i(S)

which dominates the singleton bound (every singleton is a subset) and
is exact whenever ``|X| <= k``. The price is space: the number of
stored itemsets grows with the ``k``-th power of the domain, which is
why the paper's main structure stays at singletons — the ablation bench
:mod:`benchmarks.bench_ablation_generalized` quantifies the trade-off.
"""

from __future__ import annotations

from itertools import combinations
from collections.abc import Iterable, Sequence

import numpy as np

from ..data.transactions import TransactionDatabase

__all__ = ["GeneralizedOSSM"]


class GeneralizedOSSM:
    """Segment supports for all itemsets up to a cardinality cap.

    Parameters
    ----------
    supports:
        Mapping from itemset (sorted tuple) to an int64 vector of
        per-segment supports. Itemsets never observed may be absent —
        absence means zero support in every segment.
    n_segments, n_items, max_cardinality:
        Shape metadata.
    segment_sizes:
        Optional per-segment transaction counts.
    """

    def __init__(
        self,
        supports: dict[tuple[int, ...], np.ndarray],
        n_segments: int,
        n_items: int,
        max_cardinality: int,
        segment_sizes: Sequence[int] | None = None,
    ) -> None:
        if max_cardinality < 1:
            raise ValueError("max_cardinality must be >= 1")
        self._supports = {
            tuple(sorted(key)): np.asarray(vec, dtype=np.int64)
            for key, vec in supports.items()
        }
        for key, vec in self._supports.items():
            if len(key) > max_cardinality:
                raise ValueError(
                    f"stored itemset {key} exceeds max_cardinality"
                )
            if vec.shape != (n_segments,):
                raise ValueError("support vectors must have n_segments entries")
        self.n_segments = int(n_segments)
        self.n_items = int(n_items)
        self.max_cardinality = int(max_cardinality)
        self.segment_sizes = (
            tuple(int(s) for s in segment_sizes)
            if segment_sizes is not None
            else None
        )
        self._zero = np.zeros(self.n_segments, dtype=np.int64)

    # -- construction ------------------------------------------------------

    @classmethod
    def from_segments(
        cls,
        segments: Iterable[TransactionDatabase],
        max_cardinality: int = 2,
    ) -> "GeneralizedOSSM":
        """Count every itemset of size ≤ *max_cardinality* per segment."""
        segments = list(segments)
        if not segments:
            raise ValueError("need at least one segment")
        n_items = max(segment.n_items for segment in segments)
        supports: dict[tuple[int, ...], np.ndarray] = {}
        for index, segment in enumerate(segments):
            for txn in segment:
                top = min(max_cardinality, len(txn))
                for size in range(1, top + 1):
                    for subset in combinations(txn, size):
                        vector = supports.get(subset)
                        if vector is None:
                            vector = np.zeros(len(segments), dtype=np.int64)
                            supports[subset] = vector
                        vector[index] += 1
        return cls(
            supports,
            n_segments=len(segments),
            n_items=n_items,
            max_cardinality=max_cardinality,
            segment_sizes=[len(s) for s in segments],
        )

    # -- queries ---------------------------------------------------------

    def segment_supports(self, itemset: Iterable[int]) -> np.ndarray:
        """Per-segment supports of a stored itemset (zeros if unseen)."""
        key = tuple(sorted(set(int(i) for i in itemset)))
        return self._supports.get(key, self._zero)

    def upper_bound(self, itemset: Iterable[int]) -> int:
        """Generalized Equation (1) bound using subsets up to the cap."""
        items = sorted(set(int(i) for i in itemset))
        if not items:
            if self.segment_sizes is not None:
                return int(sum(self.segment_sizes))
            raise ValueError(
                "empty-itemset bound needs segment sizes"
            )
        size = min(self.max_cardinality, len(items))
        per_segment = None
        for subset in combinations(items, size):
            vector = self._supports.get(subset, self._zero)
            per_segment = (
                vector.copy()
                if per_segment is None
                else np.minimum(per_segment, vector)
            )
        return int(per_segment.sum())

    def upper_bounds(self, itemsets: Sequence[Sequence[int]]) -> np.ndarray:
        """Bounds for many itemsets (no same-size restriction)."""
        return np.asarray(
            [self.upper_bound(itemset) for itemset in itemsets],
            dtype=np.int64,
        )

    # -- accounting --------------------------------------------------------

    def n_stored_itemsets(self) -> int:
        """Number of itemsets materialized in the map."""
        return len(self._supports)

    def nominal_size_bytes(self, cell_bytes: int = 2) -> int:
        """Storage under the paper's 2-byte-cell accounting."""
        return self.n_stored_itemsets() * self.n_segments * cell_bytes

    def __repr__(self) -> str:
        return (
            f"GeneralizedOSSM(k<={self.max_cardinality}, "
            f"{self.n_segments} segments, "
            f"{self.n_stored_itemsets()} itemsets)"
        )
