"""Segment configurations (Section 4 of the paper).

The *configuration* of a segment is the rank-ordering of its item
supports: ``(x_{i1} >= x_{i2} >= ... >= x_{im})``. Ties are broken by
the canonical item enumeration (footnote 4: ``i < i'`` wins), so every
segment has exactly one configuration and there are at most ``m!``
syntactic configurations — of which only ``2^m − m`` are *realizable*
by transaction collections (Theorem 1's counting argument).

Lemma 1: merging two segments of the same configuration preserves the
configuration and every Equation (1) pair bound; this is the loss-free
merge the exact minimizer (:mod:`repro.core.minimization`) exploits.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Sequence

import numpy as np

__all__ = [
    "configuration",
    "configurations",
    "distinct_configurations",
    "group_by_configuration",
    "same_configuration",
]

Configuration = tuple[int, ...]


def configuration(supports: Sequence[int] | np.ndarray) -> Configuration:
    """The configuration of one segment-support row.

    Items are ordered by decreasing support; equal supports are ordered
    by increasing item id (the canonical tie-break of footnote 4).
    Returns the item permutation as a tuple.
    """
    row = np.asarray(supports)
    if row.ndim != 1:
        raise ValueError("supports must be a 1-D vector")
    # argsort with 'stable' on item ids already ascending gives the
    # canonical tie-break once we sort by negated support.
    order = np.argsort(-row, kind="stable")
    return tuple(int(item) for item in order)


def configurations(matrix: np.ndarray) -> list[Configuration]:
    """Configurations of every row of a segment-support matrix."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise ValueError("matrix must be 2-D (segments x items)")
    return [configuration(row) for row in matrix]


def distinct_configurations(matrix: np.ndarray) -> set[Configuration]:
    """The set of distinct configurations among the rows of *matrix*."""
    return set(configurations(matrix))


def group_by_configuration(matrix: np.ndarray) -> list[list[int]]:
    """Group row indices by configuration (first-seen order).

    The groups are exactly the loss-free merges allowed by Lemma 1:
    summing the rows of one group never changes an Equation (1) bound.
    """
    groups: dict[Configuration, list[int]] = defaultdict(list)
    order: list[Configuration] = []
    for index, config in enumerate(configurations(matrix)):
        if config not in groups:
            order.append(config)
        groups[config].append(index)
    return [groups[config] for config in order]


def same_configuration(
    a: Sequence[int] | np.ndarray, b: Sequence[int] | np.ndarray
) -> bool:
    """True iff two support rows have the same configuration."""
    return configuration(a) == configuration(b)
