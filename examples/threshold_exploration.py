"""Interactive threshold exploration with one compile-time OSSM.

Run:  python examples/threshold_exploration.py

Section 3 of the paper: "knowledge discovery is typically an iterative
process: one first computes certain patterns, investigates them, and
then re-computes using perhaps different thresholds." The OSSM is
query-independent — built once, reused at every threshold — unlike
DHP's hash table or the FP-tree, which are rebuilt per query. This
example plays a realistic exploration session: an analyst sweeps the
threshold down until the result set gets interesting, and every query
reuses the same structure.
"""

import time

from repro import (
    GreedySegmenter,
    OSSMPruner,
    PagedDatabase,
    QuestConfig,
    QuestGenerator,
    apriori,
)
from repro.mining.counting import TidsetCounter


def main() -> None:
    print("== threshold exploration with one OSSM ==")
    config = QuestConfig(
        n_transactions=12_000,
        n_items=600,
        n_patterns=1200,
        n_seasons=4,
        seasonal_skew=0.5,  # a drifting, months-long log
        seed=17,
    )
    db = QuestGenerator(config).generate()
    paged = PagedDatabase(db, page_size=50)

    start = time.perf_counter()
    ossm = GreedySegmenter().segment(paged, n_segments=60).ossm
    build_seconds = time.perf_counter() - start
    print(
        f"compile-time: built a {ossm.n_segments}-segment OSSM in "
        f"{build_seconds:.2f}s "
        f"({ossm.nominal_size_bytes() / 1000:.0f} kB)\n"
    )

    pruner = OSSMPruner(ossm)
    header = (
        f"{'minsup':>8}  {'frequent':>8}  {'C2 plain':>9}  "
        f"{'C2 ossm':>8}  {'saved':>6}"
    )
    print("exploration-time (same OSSM for every query):")
    print(header)
    for minsup in (0.05, 0.03, 0.02, 0.01, 0.005):
        plain = apriori(
            db, minsup, counter=TidsetCounter(), max_level=3
        )
        fast = apriori(
            db, minsup, pruner=pruner, counter=TidsetCounter(), max_level=3
        )
        assert plain.frequent == fast.frequent
        c2_plain = plain.level(2).candidates_counted
        c2_fast = fast.level(2).candidates_counted
        saved = 1 - c2_fast / max(c2_plain, 1)
        print(
            f"{minsup:>8.3%}  {fast.n_frequent:>8}  {c2_plain:>9}  "
            f"{c2_fast:>8}  {saved:>6.0%}"
        )
    print("\nall five queries answered by the one structure, losslessly.")


if __name__ == "__main__":
    main()
