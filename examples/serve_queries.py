"""Serving Equation (1) bounds online with epoch-safe caching.

Run:  python examples/serve_queries.py

Demonstrates the :mod:`repro.serve` layer end to end:

1. build a collection and its OSSM through the ``repro.Session``
   facade;
2. stand up a :class:`~repro.serve.BoundQueryService` and answer
   single and batched bound queries (every answer is byte-identical to
   calling ``ossm.upper_bound`` yourself — the service only adds
   caching, coalescing, and back-pressure);
3. grow the collection with ``Session.extend`` — the map's epoch
   advances, the service's cache invalidates wholesale, and the next
   queries are answered against the grown map (DESIGN.md §10);
4. show the cache/queue statistics the service exposes.
"""

import asyncio

from repro import Session, generate_quest


async def main() -> None:
    print("== online bound serving ==")
    session = (
        Session(page_size=50)
        .generate(
            "quest",
            n_transactions=5_000,
            n_items=400,
            avg_transaction_len=8.0,
            seed=11,
        )
        .segment(n_segments=40, algorithm="greedy")
    )
    print(f"pipeline: {session}")

    async with session.serve(cache_size=512) as service:
        # Single queries; the second {3, 7} is a cache hit.
        for itemset in [(3, 7), (12,), (3, 7)]:
            bound = await service.query(itemset)
            exact = session.ossm.upper_bound(itemset)
            assert bound == exact
            print(f"  bound{itemset} = {bound}")

        # A batch: mixed cardinalities are fine, duplicates coalesce.
        batch = [(1, 2), (1, 2, 3), (5, 9), (1, 2)]
        bounds = await service.query_batch(batch)
        print(f"  batch of {len(batch)} -> {bounds}")

        before = service.stats()
        print(
            f"  epoch {before['epoch']}: "
            f"hit rate {before['cache']['hit_rate']:.0%} over "
            f"{before['cache']['hits'] + before['cache']['misses']} lookups"
        )

        # Grow the collection: epoch bumps, cache invalidates wholesale.
        extra = generate_quest(
            n_transactions=1_000, n_items=400,
            avg_transaction_len=8.0, seed=12,
        )
        session.extend(extra)
        bound = await service.query((3, 7))
        assert bound == session.ossm.upper_bound((3, 7))
        after = service.stats()
        print(
            f"  after extend: epoch {after['epoch']}, "
            f"{after['cache']['invalidations']} entries invalidated, "
            f"fresh bound{(3, 7)} = {bound}"
        )

    print("done: every served bound matched the serial Equation (1).")


if __name__ == "__main__":
    asyncio.run(main())
