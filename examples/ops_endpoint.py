"""Telemetry export walkthrough: metrics, the ops endpoint, and SLOs.

Run:  python examples/ops_endpoint.py

Demonstrates the export plane (DESIGN.md §12) end to end:

1. mine with a metrics registry active so there is telemetry to export;
2. stand up a :class:`~repro.serve.BoundQueryService` with a latency
   SLO and an :class:`~repro.obs.OpsServer` beside it, then scrape
   ``/metrics`` (Prometheus text), ``/health``, and ``/stats`` over
   plain HTTP — the same endpoints ``repro-ossm serve --ops-port``
   exposes;
3. read the rolling p50/p95/p99 latency and the error budget out of
   ``service.stats()``.

The endpoint binds port 0 here (any free port) so the example never
collides with a real deployment.
"""

import asyncio

from repro import (
    Apriori,
    MetricsRegistry,
    OpsServer,
    OSSMPruner,
    Session,
    use_registry,
)


async def http_get(host: str, port: int, path: str) -> str:
    """One minimal HTTP/1.1 GET — what a Prometheus scrape boils down to."""
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(
        f"GET {path} HTTP/1.1\r\nHost: {host}\r\n"
        "Connection: close\r\n\r\n".encode("latin-1")
    )
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    return raw.decode("utf-8").split("\r\n\r\n", 1)[1]


async def main() -> None:
    print("== telemetry export plane ==")
    registry = MetricsRegistry()
    with use_registry(registry):
        session = (
            Session(page_size=50)
            .generate(
                "quest",
                n_transactions=4_000,
                n_items=300,
                avg_transaction_len=8.0,
                seed=21,
            )
            .segment(n_segments=30, algorithm="greedy")
        )
        result = Apriori(pruner=OSSMPruner(session.ossm)).mine(
            session.database, 0.01
        )
        print(f"mined {len(result.frequent)} frequent itemsets")

        # A service with a 250 ms latency SLO, and the ops endpoint
        # riding the same event loop.
        service = session.serve(cache_size=512, slo_target=0.25)
        async with service, OpsServer(service=service) as ops:
            for itemset in [(3, 7), (12,), (3, 7), (1, 2, 3)]:
                await service.query(itemset)

            metrics = await http_get(ops.host, ops.port, "/metrics")
            print(f"\n-- /metrics ({len(metrics.splitlines())} lines) --")
            for line in metrics.splitlines():
                if line.startswith(
                    ("repro_apriori_frequent", "repro_serve_cache")
                ):
                    print(f"  {line}")

            health = await http_get(ops.host, ops.port, "/health")
            print(f"-- /health --\n  {health.strip()}")

        stats = service.stats()
        latency, slo = stats["latency"], stats["slo"]
        print(
            f"-- SLOs --\n"
            f"  p50 {latency['p50_ms']:.2f} ms / "
            f"p95 {latency['p95_ms']:.2f} ms / "
            f"p99 {latency['p99_ms']:.2f} ms "
            f"over {latency['window_count']} batches\n"
            f"  {slo['violations']}/{slo['requests']} violations, "
            f"error budget {slo['budget_remaining']:.0%} remaining"
        )

    print("done: scraped live telemetry off the serving loop.")


if __name__ == "__main__":
    asyncio.run(main())
