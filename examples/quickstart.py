"""Quickstart: build an OSSM and accelerate Apriori with it.

Run:  python examples/quickstart.py

Walks the core loop of the paper end to end:

1. generate an IBM-Quest-style transaction collection;
2. page it (the granularity segmentation works at);
3. segment the pages with the Greedy algorithm into a small OSSM;
4. mine frequent itemsets with plain Apriori and with Apriori+OSSM;
5. confirm the outputs are identical and show the counting saved.
"""

import time

from repro import (
    GreedySegmenter,
    OSSMPruner,
    PagedDatabase,
    apriori,
    generate_quest,
)
from repro.mining.counting import TidsetCounter


def main() -> None:
    print("== OSSM quickstart ==")
    db = generate_quest(
        n_transactions=10_000,
        n_items=1000,
        avg_transaction_len=10,
        n_patterns=2000,
        seed=7,
    )
    print(f"workload: {db} (avg length {db.average_length():.1f})")

    # Page and segment. The OSSM here uses 100 segments: at 2 bytes per
    # cell that is 100 * 1000 * 2 = 200 kB — the paper's "light-weight
    # structure" (Section 6.2 quotes 0.2 MB for exactly this shape).
    paged = PagedDatabase(db, page_size=50)
    segmentation = GreedySegmenter().segment(paged, n_segments=100)
    ossm = segmentation.ossm
    print(
        f"segmented {paged.n_pages} pages -> {ossm.n_segments} segments "
        f"in {segmentation.elapsed_seconds:.2f}s; "
        f"OSSM nominal size {ossm.nominal_size_bytes() / 1000:.0f} kB"
    )

    minsup = 0.01
    start = time.perf_counter()
    plain = apriori(db, minsup, counter=TidsetCounter(), max_level=3)
    plain_seconds = time.perf_counter() - start

    start = time.perf_counter()
    fast = apriori(
        db, minsup,
        pruner=OSSMPruner(ossm),
        counter=TidsetCounter(),
        max_level=3,
    )
    fast_seconds = time.perf_counter() - start

    assert plain.frequent == fast.frequent, "OSSM changed the answer!"
    print(f"\nfrequent itemsets: {plain.n_frequent} (identical outputs)")
    print(
        f"candidate 2-itemsets counted: {plain.level(2).candidates_counted}"
        f" -> {fast.level(2).candidates_counted} "
        f"({fast.level(2).candidates_pruned} pruned by the OSSM)"
    )
    print(
        f"mining time: {plain_seconds:.2f}s -> {fast_seconds:.2f}s "
        f"(speedup {plain_seconds / fast_seconds:.1f}x)"
    )


if __name__ == "__main__":
    main()
