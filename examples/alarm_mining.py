"""Telecom alarm-correlation mining (the paper's Nokia scenario).

Run:  python examples/alarm_mining.py

The paper's first data set is a proprietary Nokia log: ~5000 windowed
transactions over ~200 alarm types. This example runs the same shape of
analysis on our simulator (see DESIGN.md §5): find alarm types that
co-occur in the same time window far more often than chance — the raw
material of episode mining and alarm-correlation rules — using DHP with
an OSSM attached (the Section 7 combination), plus a bubble list to
keep segmentation focused on the alarms near the threshold.
"""

from repro import (
    OSSMPruner,
    PagedDatabase,
    RandomGreedySegmenter,
    bubble_list_for,
    dhp,
    generate_alarms,
    generate_rules,
)


def main() -> None:
    print("== alarm-correlation mining ==")
    db = generate_alarms(seed=13)  # paper scale: 5000 windows, 200 types
    print(f"workload: {db} (avg {db.average_length():.1f} alarms/window)")

    paged = PagedDatabase(db, page_size=50)
    minsup = 0.05

    # Bubble list: alarms whose frequency sits just above a low
    # reference threshold; segmentation effort goes where pruning can
    # actually happen.
    bubble = bubble_list_for(db, threshold=0.01, size=60)
    segmentation = RandomGreedySegmenter(
        n_mid=40, seed=0, items=bubble
    ).segment(paged, 16)
    print(
        f"segmented {paged.n_pages} pages -> 16 segments with a "
        f"{len(bubble)}-alarm bubble list "
        f"({segmentation.loss_evaluations} loss evaluations)"
    )

    plain = dhp(db, minsup, n_buckets=8192, max_level=3)
    fast = dhp(
        db, minsup, n_buckets=8192,
        pruner=OSSMPruner(segmentation.ossm), max_level=3,
    )
    assert plain.frequent == fast.frequent
    print(
        f"\nfrequent alarm combinations: {fast.n_frequent}; "
        f"C2 {plain.level(2).candidates_counted} -> "
        f"{fast.level(2).candidates_counted} with the OSSM"
    )

    # Correlation rules: which alarms predict which cascades?
    rules = generate_rules(fast, len(db), min_confidence=0.7)
    strong = [rule for rule in rules if rule.lift > 2.0]
    print(f"\nhigh-lift alarm implications (of {len(rules)} rules):")
    for rule in strong[:8]:
        print(f"  {rule}")


if __name__ == "__main__":
    main()
