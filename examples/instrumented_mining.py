"""Observability walkthrough: trace and meter an Apriori+OSSM run.

Run:  python examples/instrumented_mining.py

Shows the three opt-in layers of ``repro.obs`` working together:

1. ``configure_logging`` turns on the library's (otherwise silent)
   structured logs;
2. a ``TraceRecorder`` captures the span tree of the run — one span per
   mining level, nested under the segmentation and mining roots;
3. a ``MetricsRegistry`` collects prune/keep counters, counting-engine
   timers, and the Equation (1) bound-tightness histogram, rendered at
   the end by ``render_report``.

None of this is active unless installed with ``use_recorder`` /
``use_registry`` — the same mining code runs telemetry-free by default.
The CLI exposes the same switches as ``--log-level``, ``--trace-out``
and ``--metrics-out``.
"""

from repro import (
    Apriori,
    GreedySegmenter,
    MetricsRegistry,
    OSSMPruner,
    PagedDatabase,
    TraceRecorder,
    configure_logging,
    generate_quest,
    render_report,
    use_recorder,
    use_registry,
)


def main() -> None:
    print("== instrumented Apriori+OSSM ==")
    configure_logging("INFO")

    db = generate_quest(
        n_transactions=4000,
        n_items=400,
        avg_transaction_len=10,
        n_patterns=800,
        seed=7,
    )

    registry = MetricsRegistry()
    recorder = TraceRecorder()
    with use_registry(registry), use_recorder(recorder):
        # Everything inside this block is traced and metered — the
        # segmentation span lands next to the mining spans.
        paged = PagedDatabase(db, page_size=40)
        ossm = GreedySegmenter().segment(paged, n_segments=60).ossm
        result = Apriori(pruner=OSSMPruner(ossm), max_level=3).mine(
            db, 0.01
        )

    print(
        f"\nmined {result.n_frequent} frequent itemsets "
        f"in {result.elapsed_seconds:.2f}s with {result.algorithm}\n"
    )
    print(render_report(registry.snapshot(), recorder, title="example run"))


if __name__ == "__main__":
    main()
