"""Online OSSM maintenance over an arriving transaction stream.

Run:  python examples/online_stream.py

The OSSM's ancestor (the plain SSM) was designed for online mining with
Carma (the paper's references [9, 10]): data keeps arriving, and the
structure must stay useful without re-running segmentation from
scratch. This example simulates a month of arrivals in daily batches:

* a :class:`~repro.core.incremental.StreamingOSSMBuilder` ingests each
  day's pages, opening segments while under budget and merging each
  new page into its loss-closest segment afterwards;
* at the end of each "week" we snapshot the structure, mine with it,
  and verify the answers still match a from-scratch run — the bound
  stays sound at every point of the stream by construction.
"""

from repro import (
    OSSMPruner,
    QuestConfig,
    QuestGenerator,
    StreamingOSSMBuilder,
    TransactionDatabase,
    apriori,
)


def main() -> None:
    print("== online OSSM maintenance ==")
    n_items = 300
    generator = QuestGenerator(
        QuestConfig(
            n_transactions=28_000,  # 28 "days" of 1000 transactions
            n_items=n_items,
            n_patterns=600,
            n_seasons=4,  # the month drifts, week by week
            seasonal_skew=0.7,
            seed=11,
        )
    )
    builder = StreamingOSSMBuilder(n_items=n_items, max_segments=40)
    seen = TransactionDatabase([], n_items=n_items)

    for day in range(1, 29):
        batch = generator.generate(1000)
        seen = seen.concatenated(batch)
        builder.absorb(batch, page_size=100)
        if day % 7:
            continue

        # Weekly checkpoint: snapshot, mine, verify.
        ossm = builder.ossm()
        plain = apriori(seen, 0.02, max_level=2)
        fast = apriori(
            seen, 0.02, pruner=OSSMPruner(ossm), max_level=2
        )
        assert plain.frequent == fast.frequent
        kept = fast.level(2).candidates_counted
        total = plain.level(2).candidates_counted
        print(
            f"day {day:>2}: {len(seen):>6} txns in "
            f"{ossm.n_segments} segments "
            f"({builder.pages_consumed} pages consumed); "
            f"C2 {total} -> {kept} "
            f"({1 - kept / max(total, 1):.0%} pruned), outputs identical"
        )

    print(
        f"\nstream ingested with {builder.loss_evaluations} loss "
        "evaluations in total — no re-segmentation ever ran."
    )


if __name__ == "__main__":
    main()
