"""Customer-journey analysis: sequential patterns + correlations.

Run:  python examples/customer_journeys.py

Two more pattern classes from the OSSM paper's introduction, exercised
on one retail workload: *sequential patterns* ([4] — what do customers
buy on later visits, given earlier ones?) via GSP, and *correlations*
([6] — which items' presence departs from independence?) via the
chi-squared miner. Both miners take the same OSSM hook as Apriori: the
structure is built once, on the appropriate transactional view, and
prunes candidates before their (expensive) counting.
"""

from repro import (
    GreedySegmenter,
    OSSMPruner,
    PagedDatabase,
    QuestConfig,
    QuestGenerator,
    SequenceDatabase,
    gsp,
)
from repro.mining.correlations import mine_correlations


def main() -> None:
    print("== customer-journey mining ==")
    db = QuestGenerator(
        QuestConfig(
            n_transactions=1600,
            n_items=120,
            n_patterns=240,
            n_seasons=4,
            seasonal_skew=0.7,
            seed=42,
        )
    ).generate()

    # --- sequential patterns over 4-visit customers -------------------
    customers = SequenceDatabase.from_transactions(db, visits_per_customer=4)
    print(
        f"{len(customers)} customers x "
        f"{customers.average_visits():.0f} visits over {db.n_items} items"
    )
    flattened = customers.flattened()
    ossm = GreedySegmenter().segment(
        PagedDatabase(flattened, page_size=20), n_segments=16
    ).ossm

    minsup = 0.2
    plain = gsp(customers, minsup, max_size=2)
    fast = gsp(customers, minsup, pruner=OSSMPruner(ossm), max_size=2)
    assert plain.frequent == fast.frequent
    print(
        f"\nsequential patterns (>={minsup:.0%} of customers): "
        f"{fast.n_frequent}; "
        f"candidates counted {plain.candidates_counted()} -> "
        f"{fast.candidates_counted()} with the OSSM"
    )
    two_item = sorted(
        (
            (pattern, support)
            for pattern, support in fast.frequent.items()
            if sum(len(element) for element in pattern) == 2
        ),
        key=lambda kv: -kv[1],
    )
    print("top 2-item journey patterns:")
    for pattern, support in two_item[:5]:
        if len(pattern) == 2:
            label = (
                f"{{{pattern[0][0]}}} -> later {{{pattern[1][0]}}}"
            )
        else:
            label = "{" + ",".join(map(str, pattern[0])) + "} together"
        print(f"  {label}   ({support} customers)")

    # --- correlations over individual baskets ---------------------------
    basket_ossm = GreedySegmenter().segment(
        PagedDatabase(db, page_size=40), n_segments=16
    ).ossm
    correlated = mine_correlations(
        db, 0.01, significance=0.01,
        pruner=OSSMPruner(basket_ossm), max_level=2,
    )
    print(f"\nminimal correlated item pairs (chi^2, p<=0.01): {len(correlated)}")
    strongest = sorted(correlated.items(), key=lambda kv: kv[1])[:5]
    for itemset, p_value in strongest:
        label = ",".join(map(str, itemset))
        print(f"  {{{label}}}  p={p_value:.2e}")


if __name__ == "__main__":
    main()
