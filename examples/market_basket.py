"""Market-basket mining on seasonal retail data, with association rules.

Run:  python examples/market_basket.py

The scenario the paper's Section 6.1 motivates: "a supermarket database
consisting of transactions over a few months from summer to winter" —
half the catalogue sells in summer, half in winter. Skew like this is
where the OSSM shines (and where hash-based methods struggle): summer
items and winter items never reach the threshold *together*, and the
segment supports prove it without counting.

The example also consults the Figure 7 recipe to pick the segmentation
strategy the paper recommends for this situation.
"""

from repro import (
    OSSMPruner,
    PagedDatabase,
    QuestConfig,
    QuestGenerator,
    RecipeInputs,
    apriori,
    generate_rules,
    recommend,
    recommended_segmenter,
)


def main() -> None:
    print("== seasonal market-basket mining ==")
    # Quest baskets (correlated purchases) whose pattern popularity
    # swings between a "summer" and a "winter" era.
    db = QuestGenerator(
        QuestConfig(
            n_transactions=8000,
            n_items=300,
            avg_transaction_len=8,
            n_patterns=600,
            n_seasons=2,
            seasonal_skew=0.85,
            seed=21,
        )
    ).generate()
    paged = PagedDatabase(db, page_size=50)

    # What does the paper recommend for skewed data with a generous
    # segment budget? (Figure 7: Random is already sufficient.)
    inputs = RecipeInputs(
        n_user=120,
        n_pages=paged.n_pages,
        data_is_skewed=True,
        segmentation_cost_matters=True,
    )
    strategy = recommend(inputs)
    print(f"recipe recommends: {strategy}")
    segmenter = recommended_segmenter(inputs, seed=3)
    segmentation = segmenter.segment(paged, inputs.n_user)
    print(
        f"segmented {paged.n_pages} pages -> "
        f"{segmentation.n_segments} segments "
        f"({segmentation.loss_evaluations} loss evaluations)"
    )

    minsup = 0.02
    plain = apriori(db, minsup, max_level=3)
    fast = apriori(
        db, minsup, pruner=OSSMPruner(segmentation.ossm), max_level=3
    )
    assert plain.frequent == fast.frequent
    print(
        f"\ncandidate 2-itemsets: {plain.level(2).candidates_counted} "
        f"-> {fast.level(2).candidates_counted} after OSSM pruning"
    )

    rules = generate_rules(fast, len(db), min_confidence=0.3)
    print(f"\ntop association rules (of {len(rules)}):")
    for rule in rules[:8]:
        print(f"  {rule}")


if __name__ == "__main__":
    main()
