"""Partitioned mining with per-partition OSSMs (Section 7).

Run:  python examples/partitioned_mining.py

The Partition algorithm mines each database partition locally, then
verifies the union of local results in one global scan. On drifting
data, locally frequent itemsets are often globally infrequent — exactly
the candidates a global OSSM (the concatenation of the per-partition
maps) can disprove without counting. This example quantifies both
enhancement points the paper describes.
"""

from repro import Partition, QuestConfig, QuestGenerator


def main() -> None:
    print("== partitioned mining with per-partition OSSMs ==")
    config = QuestConfig(
        n_transactions=20_000,
        n_items=400,
        n_patterns=800,
        n_seasons=5,
        seasonal_skew=0.9,  # drift: local != global frequency
        seed=29,
    )
    db = QuestGenerator(config).generate()
    print(f"workload: {db}, mined in 5 partitions at minsup 2%")

    plain = Partition(n_partitions=5, max_level=3).mine(db, 0.02)
    enhanced = Partition(
        n_partitions=5, auto_ossm=10, max_level=3
    ).mine(db, 0.02)

    assert plain.frequent == enhanced.frequent
    print(f"\nfrequent itemsets: {plain.n_frequent} (identical outputs)")
    print(
        f"{'level':>5}  {'global candidates':>17}  "
        f"{'counted plain':>13}  {'counted +ossm':>13}"
    )
    for k in range(1, max(len(plain.levels), len(enhanced.levels)) + 1):
        generated = plain.candidates_generated(k)
        if not generated:
            continue
        print(
            f"{k:>5}  {generated:>17}  "
            f"{plain.candidates_counted(k):>13}  "
            f"{enhanced.candidates_counted(k):>13}"
        )
    total_plain = plain.candidates_counted()
    total_fast = enhanced.candidates_counted()
    print(
        f"\nphase-2 counting work: {total_plain} -> {total_fast} "
        f"candidates ({1 - total_fast / total_plain:.0%} disproved by "
        "the per-partition OSSMs before the global scan)"
    )


if __name__ == "__main__":
    main()
