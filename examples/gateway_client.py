"""Driving the multi-tenant HTTP gateway from a plain client.

Run:  python examples/gateway_client.py            # self-contained
      python examples/gateway_client.py http://host:port  # existing gateway

Demonstrates the :mod:`repro.serve` network edge end to end, using
nothing but the standard library on the client side (the wire format
is plain HTTP/1.1 + JSON, so ``urllib`` is all a consumer needs):

1. upload an OSSM artifact with ``PUT /v1/tenants/{t}/ossm`` — the
   first upload provisions the tenant (201), later uploads replace its
   map behind an epoch bump (200);
2. query single and batched Equation (1) bounds with
   ``POST /v1/tenants/{t}/bounds`` — every answer is byte-identical to
   calling ``ossm.upper_bound`` yourself;
3. republish a grown map mid-service and watch the reported epoch
   advance (DESIGN.md §15);
4. read per-tenant stats and the Prometheus ``/metrics`` exposition.

With no argument the example boots its own in-process
:class:`~repro.serve.Gateway`; with a URL argument it drives a gateway
someone else started (``repro-ossm serve map.npz --listen :8080``) —
CI uses both modes.
"""

import asyncio
import json
import sys
import tempfile
import time
import urllib.error
import urllib.request

from repro import Gateway, Session, generate_quest
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.resilience import Backoff

MAX_RETRIES = 5


def call(base, method, path, body=b"", expect=200):
    """One HTTP call, retrying 429/503 as the gateway instructs.

    A well-behaved client treats 429 (quota shed) and 503 (draining)
    as "come back later", not errors: it honors the ``Retry-After``
    header the gateway attaches, falling back to — and never below —
    a seeded exponential :class:`~repro.resilience.Backoff`, for a
    bounded number of attempts.
    """
    backoff = Backoff(base=0.05, max_delay=2.0, seed=0)
    for attempt in range(MAX_RETRIES + 1):
        request = urllib.request.Request(
            base + path, data=body, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=10) as response:
                status, payload = response.status, response.read()
                headers = response.headers
        except urllib.error.HTTPError as error:
            status, payload = error.code, error.read()
            headers = error.headers
        retryable = status in (429, 503) and status != expect
        if not retryable or attempt == MAX_RETRIES:
            break
        try:
            retry_after = float(headers.get("Retry-After") or 0.0)
        except ValueError:
            retry_after = 0.0
        delay = min(max(retry_after, backoff.next_delay()), 5.0)
        print(
            f"  {method} {path} -> {status}; retrying in {delay:.2f}s "
            f"(attempt {attempt + 1}/{MAX_RETRIES})"
        )
        time.sleep(delay)
    assert status == expect, (method, path, status, payload)
    if payload.strip().startswith((b"{", b"[")):
        return json.loads(payload)
    return payload.decode("utf-8", "replace")


def drive(base: str, ossm, grown) -> None:
    with tempfile.NamedTemporaryFile(suffix=".npz") as artifact:
        ossm.save(artifact.name)
        created = call(
            base, "PUT", "/v1/tenants/demo/ossm",
            open(artifact.name, "rb").read(), expect=201,
        )
    print(
        f"  provisioned tenant {created['tenant']!r}: "
        f"{created['n_segments']} segments x {created['n_items']} items "
        f"at epoch {created['epoch']}"
    )

    # Single bound; the gateway answer equals the serial Equation (1).
    answer = call(
        base, "POST", "/v1/tenants/demo/bounds",
        json.dumps({"itemset": [3, 7]}).encode(),
    )
    assert answer["bound"] == ossm.upper_bound((3, 7))
    print(f"  bound(3, 7) = {answer['bound']} @ epoch {answer['epoch']}")

    # A batch: mixed cardinalities in one request.
    batch = [[1, 2], [1, 2, 3], [5, 9]]
    answer = call(
        base, "POST", "/v1/tenants/demo/bounds",
        json.dumps({"itemsets": batch}).encode(),
    )
    assert answer["bounds"] == [
        ossm.upper_bound(tuple(s)) for s in batch
    ]
    print(f"  batch of {len(batch)} -> {answer['bounds']}")

    # Republish a grown map: the epoch bumps, caches invalidate, and
    # the next answers come from the new map.
    with tempfile.NamedTemporaryFile(suffix=".npz") as artifact:
        grown.save(artifact.name)
        published = call(
            base, "PUT", "/v1/tenants/demo/ossm",
            open(artifact.name, "rb").read(),
        )
    assert published["created"] is False
    answer = call(
        base, "POST", "/v1/tenants/demo/bounds",
        json.dumps({"itemset": [3, 7]}).encode(),
    )
    assert answer["epoch"] == published["epoch"]
    assert answer["bound"] == grown.upper_bound((3, 7))
    print(
        f"  republished at epoch {published['epoch']}: "
        f"fresh bound(3, 7) = {answer['bound']}"
    )

    stats = call(base, "GET", "/v1/tenants/demo/stats")
    print(
        f"  stats: {stats['admission']['requests']} requests, "
        f"hit rate {stats['cache']['hit_rate']:.0%}, "
        f"epoch {stats['epoch']}"
    )
    metrics = call(base, "GET", "/metrics")
    served = [
        line for line in metrics.splitlines()
        if line.startswith("repro_serve_") and not line.startswith("#")
    ]
    print(f"  metrics: {len(served)} serve-plane series exported")
    for line in served[:3]:
        print(f"    {line}")


def build_maps():
    session = (
        Session(page_size=50)
        .generate(
            "quest",
            n_transactions=2_000,
            n_items=200,
            avg_transaction_len=8.0,
            seed=11,
        )
        .segment(n_segments=20, algorithm="greedy")
    )
    ossm = session.ossm
    session.extend(
        generate_quest(
            n_transactions=500, n_items=200,
            avg_transaction_len=8.0, seed=12,
        )
    )
    return ossm, session.ossm


async def main() -> None:
    print("== multi-tenant gateway ==")
    ossm, grown = build_maps()
    if len(sys.argv) > 1:
        base = sys.argv[1].rstrip("/")
        print(f"driving external gateway at {base}")
        await asyncio.to_thread(drive, base, ossm, grown)
    else:
        with use_registry(MetricsRegistry()):
            async with Gateway() as gateway:
                print(f"booted in-process gateway at {gateway.url}")
                # urllib is blocking; keep the gateway's loop free.
                await asyncio.to_thread(drive, gateway.url, ossm, grown)
    print("done: every served bound matched the serial Equation (1).")


if __name__ == "__main__":
    asyncio.run(main())
