"""Episode mining over an alarm log, accelerated by one OSSM.

Run:  python examples/episode_mining.py

The OSSM paper's pattern-generality claim, exercised on episodes
(Mannila, Toivonen & Verkamo's WINEPI, the paper's reference [13]):
slide a window over a telecom alarm stream and find which alarm types
co-occur (parallel episodes) and which *follow each other in order*
(serial episodes) in enough windows. One OSSM over the windowed view
prunes candidates of both flavours: a serial episode can never beat
its unordered shadow, which can never beat the Equation (1) bound.
"""

from repro import (
    AlarmConfig,
    AlarmStreamGenerator,
    EventSequence,
    GreedySegmenter,
    OSSMPruner,
    PagedDatabase,
    WindowView,
    mine_parallel_episodes,
    mine_serial_episodes,
)


def main() -> None:
    print("== episode mining over an alarm stream ==")
    alarm_db = AlarmStreamGenerator(
        AlarmConfig(
            n_windows=1000,
            n_alarm_types=60,
            cascade_rate=0.25,
            background_rate=1.0,
            drift_period=120,
            seed=31,
        )
    ).generate()
    sequence = EventSequence.from_database(alarm_db)
    width = 3
    print(f"stream: {sequence}; sliding windows of width {width}")

    # One OSSM over the windowed transactions serves both miners.
    window_db = WindowView(sequence, width).to_database()
    paged = PagedDatabase(window_db, page_size=40)
    ossm = GreedySegmenter().segment(paged, n_segments=16).ossm
    pruner = OSSMPruner(ossm)

    minsup = 0.2
    parallel = mine_parallel_episodes(
        sequence, width, minsup, pruner=pruner, max_level=3
    )
    parallel_plain = mine_parallel_episodes(
        sequence, width, minsup, max_level=3
    )
    assert parallel.frequent == parallel_plain.frequent
    print(
        f"\nparallel episodes: {parallel.n_frequent} frequent; "
        f"candidates counted {parallel_plain.candidates_counted()} -> "
        f"{parallel.candidates_counted()} with the OSSM"
    )

    serial = mine_serial_episodes(
        sequence, width, minsup, pruner=pruner, max_level=2
    )
    serial_plain = mine_serial_episodes(sequence, width, minsup, max_level=2)
    assert serial.frequent == serial_plain.frequent
    print(
        f"serial episodes:   {serial.n_frequent} frequent; "
        f"candidates counted {serial_plain.candidates_counted()} -> "
        f"{serial.candidates_counted()} with the OSSM"
    )

    # The most asymmetric orderings: A often precedes B, rarely follows.
    print("\nstrongest one-way alarm precedences (A -> B):")
    pairs = [
        (episode, support)
        for episode, support in serial.frequent.items()
        if len(episode) == 2 and episode[0] != episode[1]
    ]
    scored = []
    for (a, b), support in pairs:
        reverse = serial.frequent.get((b, a), 0)
        scored.append((support - reverse, a, b, support, reverse))
    scored.sort(reverse=True)
    for gap, a, b, forward, backward in scored[:6]:
        print(
            f"  alarm{a:>3} -> alarm{b:<3}  in {forward} windows "
            f"(reverse order: {backward})"
        )


if __name__ == "__main__":
    main()
