"""Ablation A8: generality — OSSM pruning for GSP and correlation mining.

The paper's introduction claims the OSSM serves "sequential patterns
[4]" and "correlation [6, 7]" mining alike. This bench exercises both:

* **GSP** over a customer-sequence workload, with the OSSM built on the
  customer-flattened view pruning sequential candidates through their
  flattened item sets;
* **chi-squared correlation mining** over the drifting retail workload,
  with the OSSM pruning the support screen's candidates.

Shape asserted: identical outputs with and without the OSSM, fewer
candidates counted with it, for both pattern classes.
"""

import time

import pytest

from _shared import emit_bench, report
from repro.bench import format_table
from repro.core import GreedySegmenter
from repro.data import PagedDatabase, QuestConfig, QuestGenerator
from repro.data.sequences import SequenceDatabase
from repro.mining import OSSMPruner
from repro.mining.correlations import CorrelationMiner
from repro.mining.gsp import GSP

VISITS = 4
GSP_MINSUP = 0.3
CORR_MINSUP = 0.01


def _workload():
    config = QuestConfig(
        n_transactions=1600,
        n_items=120,
        n_patterns=240,
        n_seasons=4,
        seasonal_skew=0.7,
        seed=42,
    )
    return QuestGenerator(config).generate()


def _run():
    db = _workload()
    rows = {}

    # GSP over customers of VISITS transactions each.
    seqdb = SequenceDatabase.from_transactions(db, VISITS)
    flat = seqdb.flattened()
    ossm_seq = GreedySegmenter().segment(
        PagedDatabase(flat, page_size=20), 16
    ).ossm
    for label, pruner in (
        ("gsp", None),
        ("gsp+ossm", OSSMPruner(ossm_seq)),
    ):
        miner = GSP(pruner=pruner, max_size=2)
        start = time.perf_counter()
        result = miner.mine(seqdb, GSP_MINSUP)
        rows[label] = (
            result.candidates_counted(),
            result.n_frequent,
            time.perf_counter() - start,
        )

    # Correlation mining over the transactions themselves.
    ossm_txn = GreedySegmenter().segment(
        PagedDatabase(db, page_size=40), 16
    ).ossm
    for label, pruner in (
        ("chi-squared", None),
        ("chi-squared+ossm", OSSMPruner(ossm_txn)),
    ):
        miner = CorrelationMiner(pruner=pruner, max_level=2)
        start = time.perf_counter()
        correlated, accounting = miner.mine(db, CORR_MINSUP)
        rows[label] = (
            accounting.candidates_counted(),
            len(correlated),
            time.perf_counter() - start,
        )
    return rows


@pytest.fixture(scope="module")
def experiment(once):
    return once("generality_sequences", _run)


def test_sequence_table(benchmark, experiment):
    rows = [
        [label, counted, found, round(elapsed, 3)]
        for label, (counted, found, elapsed) in experiment.items()
    ]
    report(
        "Ablation A8 — OSSM generality: GSP sequential patterns and "
        "chi-squared correlations",
        format_table(
            ["miner", "candidates_counted", "patterns", "runtime_s"], rows
        ),
    )
    for label, (counted, found, elapsed) in experiment.items():
        emit_bench({
            "bench": "generality_sequences",
            "variant": label,
            "candidates_counted": counted,
            "n_patterns": found,
            "runtime_seconds": round(elapsed, 4),
        })
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_gsp_pruned_losslessly(benchmark, experiment):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    plain = experiment["gsp"]
    fast = experiment["gsp+ossm"]
    assert fast[1] == plain[1]       # same pattern count
    assert fast[0] <= plain[0]       # no more counting


def test_correlations_pruned_losslessly(benchmark, experiment):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    plain = experiment["chi-squared"]
    fast = experiment["chi-squared+ossm"]
    assert fast[1] == plain[1]
    assert fast[0] <= plain[0]
