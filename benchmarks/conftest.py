"""Shared infrastructure for the per-figure benchmark modules.

Each bench module reproduces one table/figure of the paper (see
DESIGN.md §4) and registers its rendered rows via ``_shared.report``;
the terminal-summary hook prints every registered table at the end of
the run, so ``pytest benchmarks/ --benchmark-only | tee
bench_output.txt`` captures the paper-shaped output alongside
pytest-benchmark's timings.
"""

from __future__ import annotations

import pytest

import _shared


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if _shared.REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(
            "################ OSSM reproduction: experiment output "
            "################"
        )
        for text in _shared.REPORTS:
            terminalreporter.write_line(text)


@pytest.fixture(scope="session")
def once():
    """Run an expensive experiment exactly once per session, by key."""
    cache: dict[str, object] = {}

    def runner(key: str, fn):
        if key not in cache:
            cache[key] = fn()
        return cache[key]

    return runner
