"""Ablation A2: OSSM effectiveness vs data skew.

Section 3 of the paper: "the more skewed the data, the more effective
the OSSM" — unlike hash-based methods, which skew hurts. This ablation
sweeps the seasonal-drift strength of the Quest family (holding the
basket structure, the segmenter — Random, the recipe's choice for
skewed data — and the budget fixed), and adds two extremes: the
hard-seasonal workload (no basket structure at all: essentially every
candidate pair is pruned) and the bursty alarm stream.
"""

import pytest

from _shared import emit_bench, report
from repro.bench import (
    MINSUP,
    alarm_stream,
    baseline,
    evaluate,
    format_table,
    paged,
    skewed_synthetic,
)
from repro.bench.workloads import current_scale
from repro.core import RandomSegmenter
from repro.data import QuestConfig, QuestGenerator

N_USER = 40
DRIFTS = (0.0, 0.3, 0.6, 0.9)


def _drift_variant(seasonal_skew: float):
    scale = current_scale()
    config = QuestConfig(
        n_transactions=scale.n_transactions,
        n_items=scale.n_items,
        n_patterns=scale.n_patterns,
        n_seasons=1 if seasonal_skew == 0.0 else 4,
        seasonal_skew=seasonal_skew,
        seed=42,
    )
    return QuestGenerator(config).generate()


def _cell(db):
    pages = paged(db)
    base = baseline(db, MINSUP)
    segmentation = RandomSegmenter(seed=0).segment(pages, N_USER)
    return evaluate(db, segmentation.ossm, base, segmentation)


def _run():
    cells = [
        (f"quest drift={drift}", _cell(_drift_variant(drift)))
        for drift in DRIFTS
    ]
    cells.append(("hard-seasonal", _cell(skewed_synthetic())))
    cells.append(("alarm stream", _cell(alarm_stream())))
    return cells


@pytest.fixture(scope="module")
def experiment(once):
    return once("ablation_skew", _run)


def test_skew_table(benchmark, experiment):
    rows = [
        [name, round(cell.c2_ratio, 3), round(cell.speedup, 2)]
        for name, cell in experiment
    ]
    report(
        f"Ablation A2 — skew vs OSSM effectiveness (Random, n={N_USER})",
        format_table(["workload", "C2_ratio", "speedup"], rows),
    )
    for name, cell in experiment:
        emit_bench({
            "bench": "ablation_skew",
            "variant": name,
            "n_user": N_USER,
            "c2_ratio": round(cell.c2_ratio, 5),
            "speedup": round(cell.speedup, 4),
        })
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_drift_strengthens_pruning(benchmark, experiment):
    """More drift -> smaller kept-candidate ratio, monotonically."""
    by_name = dict(experiment)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    ratios = [by_name[f"quest drift={d}"].c2_ratio for d in DRIFTS]
    assert all(b <= a + 0.02 for a, b in zip(ratios, ratios[1:])), ratios


def test_hard_seasonal_is_the_extreme(benchmark, experiment):
    """Item-coherent full skew prunes essentially everything."""
    by_name = dict(experiment)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert (
        by_name["hard-seasonal"].c2_ratio
        <= by_name["quest drift=0.0"].c2_ratio
    )
