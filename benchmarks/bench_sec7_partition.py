"""Section 7 discussion: the Partition algorithm with per-partition OSSMs.

The paper: "if an OSSM is built for each partition, the execution time
for each partition will be significantly reduced because known local
infrequent itemsets are pruned"; moreover the union of per-partition
OSSMs prunes *global* candidates — locally frequent itemsets that are
provably globally infrequent — before the phase-2 scan.

Reproduced shape: identical output, fewer candidates counted in both
phases; the effect is largest on drifting data, where locally frequent
≠ globally frequent is common.
"""

import time

import pytest

from _shared import emit_bench, report
from repro.bench import MINSUP, drifting_synthetic_pages, format_table
from repro.mining import Partition

P = 500
N_PARTITIONS = 5
SEGMENTS_PER_PARTITION = 8


def _run():
    db = drifting_synthetic_pages(P).database
    rows = {}
    for label, miner in (
        ("partition", Partition(n_partitions=N_PARTITIONS, max_level=3)),
        (
            "partition+ossm",
            Partition(
                n_partitions=N_PARTITIONS,
                auto_ossm=SEGMENTS_PER_PARTITION,
                max_level=3,
            ),
        ),
    ):
        start = time.perf_counter()
        result = miner.mine(db, MINSUP)
        rows[label] = (result, time.perf_counter() - start)
    return rows


@pytest.fixture(scope="module")
def experiment(once):
    return once("sec7partition", _run)


def test_partition_table(benchmark, experiment):
    rows = [
        [
            label,
            round(elapsed, 3),
            result.candidates_counted(2),
            result.candidates_counted(),
            result.n_frequent,
        ]
        for label, (result, elapsed) in experiment.items()
    ]
    report(
        "Section 7 — Partition with per-partition OSSMs "
        f"(p={N_PARTITIONS}, {SEGMENTS_PER_PARTITION} segs/partition)",
        format_table(
            ["algorithm", "runtime_s", "C2_counted", "all_counted",
             "frequent"],
            rows,
        ),
    )
    for label, (result, elapsed) in experiment.items():
        emit_bench({
            "bench": "sec7_partition",
            "variant": label,
            "runtime_seconds": round(elapsed, 4),
            "c2_candidates": result.candidates_counted(2),
            "candidates_counted": result.candidates_counted(),
            "n_frequent": result.n_frequent,
        })
    db = drifting_synthetic_pages(P).database
    miner = Partition(n_partitions=N_PARTITIONS, max_level=2)
    benchmark.pedantic(
        lambda: miner.mine(db, MINSUP), rounds=1, iterations=1
    )


def test_partition_ossm_reduces_counting(benchmark, experiment):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    plain, _ = experiment["partition"]
    enhanced, _ = experiment["partition+ossm"]
    assert enhanced.same_itemsets(plain)
    assert enhanced.candidates_counted() <= plain.candidates_counted()
