"""Shared experiment drivers and the report registry for bench modules."""

from __future__ import annotations

REPORTS: list[str] = []


def report(title: str, body: str) -> None:
    """Register a rendered experiment table for the end-of-run summary."""
    from repro.bench import banner

    REPORTS.append(f"{banner(title)}\n{body}")


from repro.bench import (
    MINSUP,
    baseline,
    evaluate,
    paged,
    regular_synthetic,
)
from repro.core import GreedySegmenter, RandomSegmenter, RCSegmenter

#: Figure 4 sweeps the segment budget over this range (paper: 20..160).
FIG4_N_USERS = (20, 40, 80, 120, 160)

FIG4_SEGMENTERS = {
    "greedy": lambda: GreedySegmenter(),
    "rc": lambda: RCSegmenter(seed=0),
    "random": lambda: RandomSegmenter(seed=0),
}


def fig4_sweep():
    """All Figure 4 cells: {algorithm: {n_user: Cell}} plus the baseline.

    One plain-Apriori baseline is shared by every cell, exactly as the
    paper normalizes both sub-figures against "Apriori without the SSM".
    """
    db = regular_synthetic()
    pages = paged(db)
    base = baseline(db, MINSUP)
    cells: dict[str, dict[int, object]] = {}
    ossms: dict[str, dict[int, object]] = {}
    for name, factory in FIG4_SEGMENTERS.items():
        cells[name] = {}
        ossms[name] = {}
        for n_user in FIG4_N_USERS:
            segmentation = factory().segment(pages, n_user)
            cells[name][n_user] = evaluate(
                db, segmentation.ossm, base, segmentation
            )
            ossms[name][n_user] = segmentation.ossm
    return {"baseline": base, "cells": cells, "ossms": ossms}
