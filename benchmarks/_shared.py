"""Shared experiment drivers and the report registry for bench modules."""

from __future__ import annotations

import json
from pathlib import Path

REPORTS: list[str] = []

#: Repo root — BENCH_<name>.json artifacts land here so CI can collect
#: them with one glob.
_REPO_ROOT = Path(__file__).resolve().parent.parent

_BENCH_RECORDS: dict[str, list[dict]] = {}


def report(title: str, body: str) -> None:
    """Register a rendered experiment table for the end-of-run summary."""
    from repro.bench import banner

    REPORTS.append(f"{banner(title)}\n{body}")


def emit_bench(record: dict) -> None:
    """Print the ``BENCH {json}`` line and persist the record to disk.

    Records accumulate per ``record["bench"]`` name; every call
    rewrites ``BENCH_<name>.json`` at the repo root with the list
    emitted so far, so even a run that dies mid-sweep leaves the
    completed configurations on disk.
    """
    name = record["bench"]
    print("BENCH " + json.dumps(record, sort_keys=True))
    _BENCH_RECORDS.setdefault(name, []).append(record)
    path = _REPO_ROOT / f"BENCH_{name}.json"
    path.write_text(
        json.dumps(_BENCH_RECORDS[name], indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


from repro.bench import (
    MINSUP,
    baseline,
    evaluate,
    paged,
    regular_synthetic,
)
from repro.core import GreedySegmenter, RandomSegmenter, RCSegmenter

#: Figure 4 sweeps the segment budget over this range (paper: 20..160).
FIG4_N_USERS = (20, 40, 80, 120, 160)

FIG4_SEGMENTERS = {
    "greedy": lambda: GreedySegmenter(),
    "rc": lambda: RCSegmenter(seed=0),
    "random": lambda: RandomSegmenter(seed=0),
}


def fig4_sweep():
    """All Figure 4 cells: {algorithm: {n_user: Cell}} plus the baseline.

    One plain-Apriori baseline is shared by every cell, exactly as the
    paper normalizes both sub-figures against "Apriori without the SSM".
    """
    db = regular_synthetic()
    pages = paged(db)
    base = baseline(db, MINSUP)
    cells: dict[str, dict[int, object]] = {}
    ossms: dict[str, dict[int, object]] = {}
    for name, factory in FIG4_SEGMENTERS.items():
        cells[name] = {}
        ossms[name] = {}
        for n_user in FIG4_N_USERS:
            segmentation = factory().segment(pages, n_user)
            cells[name][n_user] = evaluate(
                db, segmentation.ossm, base, segmentation
            )
            ossms[name][n_user] = segmentation.ossm
    return {"baseline": base, "cells": cells, "ossms": ossms}
