"""Durability benchmarks: crash recovery, drain, and WAL overhead.

Three legs, all emitted to ``BENCH_recovery.json``:

* **Recovery wall-clock vs tenant count** — build a state directory
  with N tenants in-process, then time ``TenantRegistry.recover``
  (WAL replay + verified artifact reload + service construction).
  Asserts the 100-tenant recovery stays under a bounded wall-clock.
* **End-to-end boot and drain** — boot the real CLI gateway as a
  subprocess on the 100-tenant state directory, time spawn→``/ready``
  and SIGTERM→exit-0 (the graceful drain path).
* **Publish p99: WAL-on vs WAL-off** — the durable publish path
  (artifact fsync → WAL append → swap) against the same artifact
  save plus an in-memory swap. Asserts the p99 overhead of the WAL
  append stays ≤ 1.5×.

Scale knob: ``REPRO_RECOVERY_BENCH_PUBLISHES`` overrides the publish
sample count.
"""

from __future__ import annotations

import asyncio
import os
import time

import numpy as np

from _shared import emit_bench, report
from repro.bench import format_table
from repro.core.ossm import OSSM
from repro.resilience.chaos import GatewayProcess, build_map
from repro.serve import TenantRegistry, TenantStore

TENANT_COUNTS = (10, 100)
RECOVERY_BUDGET_SECONDS = 30.0
P99_OVERHEAD_CEILING = 1.5
N_SEGMENTS = 32
N_ITEMS = 256


def _tenant_map(index: int) -> OSSM:
    """A deterministic per-tenant map, big enough that the artifact
    write (not the WAL append) dominates a durable publish."""
    rng = np.random.default_rng(1000 + index)
    matrix = rng.integers(
        0, 50, size=(N_SEGMENTS, N_ITEMS), dtype=np.int64
    )
    return OSSM(matrix, segment_sizes=(50,) * N_SEGMENTS)


def _build_state(root, n_tenants: int) -> None:
    async def build():
        registry = TenantRegistry(store=TenantStore(root))
        for i in range(n_tenants):
            registry.create(f"t{i:03d}", _tenant_map(i))
        await registry.aclose()

    asyncio.run(build())


def _percentile(values: list[float], q: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(q * len(ordered)))
    return ordered[index]


def test_recovery_wall_clock_vs_tenant_count(tmp_path):
    rows = []
    elapsed_by_count: dict[int, float] = {}
    for n_tenants in TENANT_COUNTS:
        root = tmp_path / f"state_{n_tenants}"
        _build_state(root, n_tenants)

        async def recover():
            start = time.perf_counter()
            registry = TenantRegistry.recover(TenantStore(root))
            elapsed = time.perf_counter() - start
            assert len(registry.names()) == n_tenants
            # Recovery is useful only if the restored tenants answer:
            # spot-check one bound against the Equation (1) oracle.
            probe = registry.get(f"t{n_tenants - 1:03d}")
            async with registry:
                got = await probe.query_batch([(0, 1)])
            assert got == [_tenant_map(n_tenants - 1).upper_bound((0, 1))]
            await registry.aclose()
            return elapsed

        elapsed = asyncio.run(recover())
        elapsed_by_count[n_tenants] = elapsed
        emit_bench({
            "bench": "recovery",
            "case": "recover_in_process",
            "n_tenants": n_tenants,
            "seconds": round(elapsed, 4),
            "tenants_per_second": round(n_tenants / elapsed, 1),
            "budget_seconds": RECOVERY_BUDGET_SECONDS,
        })
        rows.append([n_tenants, round(elapsed, 3),
                     round(n_tenants / elapsed, 1)])

    assert elapsed_by_count[max(TENANT_COUNTS)] < RECOVERY_BUDGET_SECONDS, (
        f"recovering {max(TENANT_COUNTS)} tenants took "
        f"{elapsed_by_count[max(TENANT_COUNTS)]:.2f}s; "
        f"budget is {RECOVERY_BUDGET_SECONDS}s"
    )

    # End-to-end: the real CLI boots on the biggest state directory.
    boot_npz = tmp_path / "boot.npz"
    build_map(seed=55).save(boot_npz)
    root = tmp_path / f"state_{max(TENANT_COUNTS)}"
    spawn = time.perf_counter()
    with GatewayProcess(boot_npz, root) as gateway:
        gateway.wait_ready(timeout=60.0)
        boot_seconds = time.perf_counter() - spawn
        tenants = gateway.get_json("/v1/tenants")["tenants"]
        assert len(tenants) == max(TENANT_COUNTS) + 1  # + CLI default
        drain_start = time.perf_counter()
        gateway.terminate()
        exit_code = gateway.wait()
        drain_seconds = time.perf_counter() - drain_start
    assert exit_code == 0
    emit_bench({
        "bench": "recovery",
        "case": "gateway_boot_and_drain",
        "n_tenants": max(TENANT_COUNTS),
        "boot_to_ready_seconds": round(boot_seconds, 4),
        "drain_seconds": round(drain_seconds, 4),
        "exit_code": exit_code,
    })
    report(
        "Recovery — wall-clock vs tenant count (in-process + real CLI)",
        format_table(
            ["tenants", "recover_s", "tenants/s"],
            rows,
        ) + (
            f"\n  gateway boot→ready {boot_seconds:.2f}s, "
            f"SIGTERM→exit(0) drain {drain_seconds:.2f}s "
            f"({max(TENANT_COUNTS)} tenants)"
        ),
    )


def test_publish_p99_wal_overhead(tmp_path):
    n_publishes = int(
        os.environ.get("REPRO_RECOVERY_BENCH_PUBLISHES", "200")
    )
    warmup = 10

    async def measure(with_wal: bool) -> list[float]:
        if with_wal:
            registry = TenantRegistry(
                store=TenantStore(tmp_path / "wal_on")
            )
        else:
            registry = TenantRegistry()
        scratch = tmp_path / "wal_off_artifacts"
        scratch.mkdir(exist_ok=True)
        registry.create("bench", _tenant_map(0))
        latencies: list[float] = []
        for i in range(warmup + n_publishes):
            ossm = _tenant_map(0)
            start = time.perf_counter()
            if not with_wal:
                # The baseline pays the identical artifact publication
                # cost (atomic fsync'd .npz) — the measured delta is
                # exactly the WAL append.
                ossm.save(scratch / f"epoch_{i:08d}.npz")
            registry.publish("bench", ossm)
            latencies.append(time.perf_counter() - start)
        await registry.aclose()
        return latencies[warmup:]

    wal_off = asyncio.run(measure(with_wal=False))
    wal_on = asyncio.run(measure(with_wal=True))

    p99_off = _percentile(wal_off, 0.99)
    p99_on = _percentile(wal_on, 0.99)
    p50_off = _percentile(wal_off, 0.50)
    p50_on = _percentile(wal_on, 0.50)
    ratio = p99_on / p99_off if p99_off else float("inf")

    emit_bench({
        "bench": "recovery",
        "case": "publish_wal_overhead",
        "n_publishes": n_publishes,
        "wal_off_p50_ms": round(p50_off * 1e3, 4),
        "wal_off_p99_ms": round(p99_off * 1e3, 4),
        "wal_on_p50_ms": round(p50_on * 1e3, 4),
        "wal_on_p99_ms": round(p99_on * 1e3, 4),
        "p99_ratio": round(ratio, 3),
        "ceiling": P99_OVERHEAD_CEILING,
    })
    report(
        "Recovery — durable publish overhead (WAL-on vs WAL-off)",
        format_table(
            ["", "p50_ms", "p99_ms"],
            [
                ["wal_off", round(p50_off * 1e3, 3),
                 round(p99_off * 1e3, 3)],
                ["wal_on", round(p50_on * 1e3, 3),
                 round(p99_on * 1e3, 3)],
            ],
        ) + f"\n  p99 ratio {ratio:.2f}x (ceiling {P99_OVERHEAD_CEILING}x)",
    )
    assert ratio <= P99_OVERHEAD_CEILING, (
        f"durable publish p99 is {ratio:.2f}x the WAL-off baseline; "
        f"ceiling is {P99_OVERHEAD_CEILING}x"
    )
