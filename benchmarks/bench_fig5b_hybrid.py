"""Figure 5(b): hybrid strategies at large P.

Paper (P = 50 000 pages ≈ 5 million transactions, n_mid = 200,
n_user = 40): Random-RC segments in 521 s (vs 2791 s for pure RC on a
collection 100× smaller!) at 4.9× speedup; Random-Greedy 1051 s at
7.2×. The point: Random absorbs the P² factor, the elaborate phase
polishes the final 200 → 40 merges, and quality barely drops.

Scaled reproduction: P = 2000 pages (the largest the Python substrate
sweeps comfortably; 100 000 transactions at the default tier) against
the P = 500 pure runs of Figure 5(a). The shape assertions: hybrids'
loss-evaluation counts are bounded by the n_mid² seeding (independent
of P), their segmentation time stays within a small multiple of pure
RC/Greedy on the 4×-smaller collection, and their OSSMs still prune.
"""

import pytest

from _shared import emit_bench, report
from repro.bench import (
    MINSUP,
    baseline,
    evaluate,
    format_table,
    drifting_synthetic_pages,
)
from repro.core import RandomGreedySegmenter, RandomRCSegmenter

P = 2000
N_MID = 200
N_USER = 40

STRATEGIES = (
    ("random-rc", lambda: RandomRCSegmenter(n_mid=N_MID, seed=0)),
    ("random-greedy", lambda: RandomGreedySegmenter(n_mid=N_MID, seed=0)),
)


def _run():
    pages = drifting_synthetic_pages(P)
    db = pages.database
    base = baseline(db, MINSUP)
    cells = {}
    for name, factory in STRATEGIES:
        segmentation = factory().segment(pages, N_USER)
        cells[name] = (
            segmentation,
            evaluate(db, segmentation.ossm, base, segmentation),
        )
    return {"cells": cells, "baseline": base}


@pytest.fixture(scope="module")
def experiment(once):
    return once("fig5b", _run)


def test_fig5b_table(benchmark, experiment):
    rows = []
    for name, _ in STRATEGIES:
        segmentation, cell = experiment["cells"][name]
        rows.append(
            [
                name,
                round(segmentation.elapsed_seconds, 3),
                segmentation.loss_evaluations,
                round(cell.speedup, 2),
                round(cell.c2_ratio, 3),
            ]
        )
    report(
        f"Figure 5(b) — hybrid strategies (P={P}, n_mid={N_MID}, "
        f"n_user={N_USER})",
        format_table(
            ["strategy", "seg_time_s", "loss_evals", "speedup", "C2_ratio"],
            rows,
        ),
    )
    for name, _ in STRATEGIES:
        segmentation, cell = experiment["cells"][name]
        emit_bench({
            "bench": "fig5b",
            "algorithm": name,
            "n_user": N_USER,
            "seg_seconds": round(segmentation.elapsed_seconds, 4),
            "loss_evaluations": segmentation.loss_evaluations,
            "speedup": round(cell.speedup, 4),
            "c2_ratio": round(cell.c2_ratio, 5),
        })
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_fig5b_cost_independent_of_p(benchmark, experiment):
    """The elaborate phase's work is seeded by n_mid, not P."""
    cells = experiment["cells"]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # Greedy's seeding from n_mid segments costs C(n_mid, 2); with the
    # per-merge rescoring the total stays well under 2 * n_mid^2 even
    # though P is 10x n_mid.
    assert cells["random-greedy"][0].loss_evaluations < 2 * N_MID**2
    assert cells["random-rc"][0].loss_evaluations < 2 * N_MID**2


def test_fig5b_pruning_retained(benchmark, experiment):
    """The hybrids' OSSMs still prune at a P the pure strategies cannot
    touch (pure Greedy at this P needs ~4M loss evaluations / ~100x
    the wall time for a C2 ratio of ~0.77; see EXPERIMENTS.md)."""
    cells = experiment["cells"]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for name, _ in STRATEGIES:
        assert cells[name][1].c2_ratio < 1.0, name


def test_fig5b_benchmark_random_greedy(benchmark):
    """Time the full hybrid segmentation (pytest-benchmark target)."""
    pages = drifting_synthetic_pages(P)
    benchmark.pedantic(
        lambda: RandomGreedySegmenter(n_mid=N_MID, seed=0).segment(
            pages, N_USER
        ),
        rounds=1,
        iterations=1,
    )
