"""Section 7 discussion: DepthProject with OSSM extension pruning.

The paper: DepthProject "generates possible frequent lexicographic
extensions (i.e. candidates) of a tree node and tests for frequency.
If an OSSM is used simultaneously, then known infrequent candidates
can be pruned before the frequency counting."

Reproduced shape: identical frequent sets; the number of extensions
whose projected support is actually computed drops with the OSSM, and
the wall time with it (tidset projection is per-extension work, so
here the candidate saving does translate to time).
"""

import time

import pytest

from _shared import emit_bench, report
from repro.bench import MINSUP, drifting_synthetic_pages, format_table
from repro.core import RandomGreedySegmenter
from repro.mining import DepthProject, OSSMPruner

P = 500
N_USER = 40


def _run():
    pages = drifting_synthetic_pages(P)
    db = pages.database
    segmentation = RandomGreedySegmenter(n_mid=200, seed=0).segment(
        pages, N_USER
    )
    rows = {}
    for label, miner in (
        ("depthproject", DepthProject(max_level=3)),
        (
            "depthproject+ossm",
            DepthProject(
                pruner=OSSMPruner(segmentation.ossm), max_level=3
            ),
        ),
    ):
        start = time.perf_counter()
        result = miner.mine(db, MINSUP)
        rows[label] = (result, time.perf_counter() - start)
    return rows


@pytest.fixture(scope="module")
def experiment(once):
    return once("sec7depthproject", _run)


def test_depthproject_table(benchmark, experiment):
    rows = [
        [
            label,
            round(elapsed, 3),
            result.candidates_counted(),
            result.n_frequent,
        ]
        for label, (result, elapsed) in experiment.items()
    ]
    report(
        f"Section 7 — DepthProject with/without the OSSM (n={N_USER})",
        format_table(
            ["algorithm", "runtime_s", "extensions_counted", "frequent"],
            rows,
        ),
    )
    for label, (result, elapsed) in experiment.items():
        emit_bench({
            "bench": "sec7_depthproject",
            "variant": label,
            "runtime_seconds": round(elapsed, 4),
            "candidates_counted": result.candidates_counted(),
            "n_frequent": result.n_frequent,
        })
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_depthproject_ossm_prunes_extensions(benchmark, experiment):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    plain, _ = experiment["depthproject"]
    fast, _ = experiment["depthproject+ossm"]
    assert fast.same_itemsets(plain)
    assert fast.candidates_counted() < plain.candidates_counted()
