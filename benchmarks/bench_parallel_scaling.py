"""Parallel counting scaling: serial vs 2 and 4 workers (Figure 4 data).

The sharded counter's contract is *exactness first*: every cell below
re-verifies that the parallel run found bit-identical frequent sets
before any timing is reported. Timings are emitted as ``BENCH {json}``
lines (one per configuration) so scaling curves can be collected across
machines; the ≥1.5× speedup-at-4-workers criterion is evaluated from
those lines on multi-core hardware — a single-core runner still checks
exactness and telemetry, it just cannot demonstrate speedup.

Scale: at ``REPRO_SCALE=paper`` the workload is the Figure 4 regular
synthetic stream grown to 100 000 transactions (the paper's m = 1000
item universe); the default tier uses the shared 10 000-transaction
workload so the module stays cheap enough for routine runs. Override
the transaction count with ``REPRO_PARALLEL_BENCH_N``.
"""

from __future__ import annotations

import os
import time

import pytest

from _shared import emit_bench, report
from repro.bench import MINSUP, format_table
from repro.bench.workloads import QuestConfig, QuestGenerator, current_scale
from repro.mining import Apriori
from repro.mining.counting import TidsetCounter
from repro.obs.trace import TraceRecorder, use_recorder
from repro.parallel import ParallelCounter

WORKER_COUNTS = (2, 4)
MAX_LEVEL = 3


def fig4_workload():
    scale = current_scale()
    override = int(os.environ.get("REPRO_PARALLEL_BENCH_N", "0"))
    n_transactions = override or (
        100_000 if scale.name == "paper" else scale.n_transactions
    )
    config = QuestConfig(
        n_transactions=n_transactions,
        n_items=scale.n_items,
        avg_transaction_len=10.0,
        avg_pattern_len=4.0,
        n_patterns=scale.n_patterns,
        seed=42,
    )
    return QuestGenerator(config).generate()


def _mine(db, counter, recorder=None):
    miner = Apriori(counter=counter, max_level=MAX_LEVEL)
    start = time.perf_counter()
    if recorder is not None:
        with use_recorder(recorder):
            result = miner.mine(db, MINSUP)
    else:
        result = miner.mine(db, MINSUP)
    return result, time.perf_counter() - start


def _shard_spans(recorder):
    found = []

    def walk(span):
        if span.name == "parallel.count.shard":
            found.append(span)
        for child in span.children:
            walk(child)

    for root in recorder.roots:
        walk(root)
    return found


def scaling_sweep():
    db = fig4_workload()
    serial_result, serial_seconds = _mine(db, TidsetCounter())
    rows = []
    emitted = []
    for workers in WORKER_COUNTS:
        recorder = TraceRecorder()
        with ParallelCounter(workers=workers) as counter:
            result, seconds = _mine(db, counter, recorder)
        assert result.same_itemsets(serial_result), (
            f"parallel run (workers={workers}) diverged from serial"
        )
        spans = _shard_spans(recorder)
        record = {
            "bench": "parallel_scaling",
            "workload": "fig4-regular-synthetic",
            "n_transactions": len(db),
            "n_items": db.n_items,
            "minsup": MINSUP,
            "max_level": MAX_LEVEL,
            "workers": workers,
            "serial_seconds": round(serial_seconds, 4),
            "parallel_seconds": round(seconds, 4),
            "speedup": round(serial_seconds / seconds, 3) if seconds else 0.0,
            "shard_spans": len(spans),
            "exact": True,
            "cpu_count": os.cpu_count(),
        }
        emit_bench(record)
        emitted.append(record)
        rows.append(
            [
                workers,
                round(serial_seconds, 3),
                round(seconds, 3),
                record["speedup"],
                len(spans),
            ]
        )
    return {
        "db": db,
        "serial_seconds": serial_seconds,
        "records": emitted,
        "rows": rows,
    }


@pytest.fixture(scope="module")
def sweep(once):
    return once("parallel_scaling", scaling_sweep)


def test_parallel_scaling_series(benchmark, sweep):
    report(
        "Parallel counting — serial vs sharded Apriori "
        f"(regular-synthetic, {len(sweep['db'])} transactions, "
        f"minsup {MINSUP:.0%})",
        format_table(
            ["workers", "serial_s", "parallel_s", "speedup", "shard_spans"],
            sweep["rows"],
        ),
    )
    db = sweep["db"]
    counter = ParallelCounter(workers=WORKER_COUNTS[-1])
    with counter:
        benchmark.pedantic(
            lambda: Apriori(counter=counter, max_level=MAX_LEVEL).mine(
                db, MINSUP
            ),
            rounds=1,
            iterations=1,
        )


def test_every_fanout_traced_per_shard(benchmark, sweep):
    """Each parallel level leaves one span per shard in the trace."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for record in sweep["records"]:
        assert record["shard_spans"] >= record["workers"]


def test_speedup_reported_on_capable_hardware(benchmark, sweep):
    """The ≥1.5× criterion, asserted only where it is measurable."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    cpus = os.cpu_count() or 1
    four = next(r for r in sweep["records"] if r["workers"] == 4)
    if cpus >= 4 and len(sweep["db"]) >= 100_000:
        assert four["speedup"] >= 1.5, four
    else:
        # Single-core / small-scale runs still prove exactness; the
        # speedup numbers are informational (see the BENCH lines).
        assert four["exact"]
