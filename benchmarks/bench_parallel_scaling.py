"""Parallel counting scaling: process pool vs bitmap threads (Figure 4).

Two fan-out strategies over the same serial baseline (``TidsetCounter``
Apriori), every cell re-verified bit-identical before any timing is
reported:

* ``process-pool`` — the sharded :class:`ParallelCounter`. Pure-python
  counting holds the GIL, so it must fork; pickle/IPC overhead means
  its speedup criterion (≥1.5× at 4 workers) only applies on multi-core
  hardware.
* ``bitmap-threads`` — the vertical bitmap engine fanned out over a
  ``ThreadPoolExecutor``. Its AND+popcount kernels are vectorized numpy
  that releases the GIL, so the engine beats the serial baseline even
  single-core; the ≥2× speedup-at-4-threads criterion on ≥100k-txn
  workloads is asserted unconditionally, not gated on CPU count.

Timings are emitted as ``BENCH {json}`` lines and persisted to
``BENCH_parallel_scaling.json`` via ``emit_bench`` (both legs), so
``repro-ossm bench-history`` has a parallel-scaling series.

Scale: at ``REPRO_SCALE=paper`` the workload is the Figure 4 regular
synthetic stream grown to 100 000 transactions (the paper's m = 1000
item universe); the default tier uses the shared 10 000-transaction
workload so the module stays cheap enough for routine runs. Override
the transaction count with ``REPRO_PARALLEL_BENCH_N``.
"""

from __future__ import annotations

import os
import time

import pytest

from _shared import emit_bench, report
from repro.bench import MINSUP, format_table
from repro.bench.workloads import QuestConfig, QuestGenerator, current_scale
from repro.mining import Apriori
from repro.mining.counting import TidsetCounter
from repro.obs.trace import TraceRecorder, use_recorder
from repro.parallel import (
    ParallelCounter,
    ThreadedBitmapCounter,
    ThreadShardPlanner,
)

WORKER_COUNTS = (2, 4)
MAX_LEVEL = 3


def fig4_workload():
    scale = current_scale()
    override = int(os.environ.get("REPRO_PARALLEL_BENCH_N", "0"))
    n_transactions = override or (
        100_000 if scale.name == "paper" else scale.n_transactions
    )
    config = QuestConfig(
        n_transactions=n_transactions,
        n_items=scale.n_items,
        avg_transaction_len=10.0,
        avg_pattern_len=4.0,
        n_patterns=scale.n_patterns,
        seed=42,
    )
    return QuestGenerator(config).generate()


def _mine(db, counter, recorder=None):
    miner = Apriori(counter=counter, max_level=MAX_LEVEL)
    start = time.perf_counter()
    if recorder is not None:
        with use_recorder(recorder):
            result = miner.mine(db, MINSUP)
    else:
        result = miner.mine(db, MINSUP)
    return result, time.perf_counter() - start


def _shard_spans(recorder, name):
    found = []

    def walk(span):
        if span.name == name:
            found.append(span)
        for child in span.children:
            walk(child)

    for root in recorder.roots:
        walk(root)
    return found


ENGINES = {
    "process-pool": (
        lambda workers: ParallelCounter(workers=workers),
        "parallel.count.shard",
    ),
    "bitmap-threads": (
        lambda workers: ThreadedBitmapCounter(
            workers=workers, planner=ThreadShardPlanner()
        ),
        "bitmap.count.shard",
    ),
}


def scaling_sweep():
    db = fig4_workload()
    serial_result, serial_seconds = _mine(db, TidsetCounter())
    rows = []
    emitted = []
    for engine, (factory, span_name) in ENGINES.items():
        for workers in WORKER_COUNTS:
            recorder = TraceRecorder()
            with factory(workers) as counter:
                result, seconds = _mine(db, counter, recorder)
            assert result.same_itemsets(serial_result), (
                f"{engine} run (workers={workers}) diverged from serial"
            )
            spans = _shard_spans(recorder, span_name)
            record = {
                "bench": "parallel_scaling",
                "workload": "fig4-regular-synthetic",
                "engine": engine,
                "n_transactions": len(db),
                "n_items": db.n_items,
                "minsup": MINSUP,
                "max_level": MAX_LEVEL,
                "workers": workers,
                "serial_seconds": round(serial_seconds, 4),
                "parallel_seconds": round(seconds, 4),
                "speedup": (
                    round(serial_seconds / seconds, 3) if seconds else 0.0
                ),
                "shard_spans": len(spans),
                "exact": True,
                "cpu_count": os.cpu_count(),
            }
            emit_bench(record)
            emitted.append(record)
            rows.append(
                [
                    engine,
                    workers,
                    round(serial_seconds, 3),
                    round(seconds, 3),
                    record["speedup"],
                    len(spans),
                ]
            )
    return {
        "db": db,
        "serial_seconds": serial_seconds,
        "records": emitted,
        "rows": rows,
    }


@pytest.fixture(scope="module")
def sweep(once):
    return once("parallel_scaling", scaling_sweep)


def _leg(sweep, engine, workers):
    return next(
        r
        for r in sweep["records"]
        if r["engine"] == engine and r["workers"] == workers
    )


def test_parallel_scaling_series(benchmark, sweep):
    report(
        "Parallel counting — serial vs fanned-out Apriori "
        f"(regular-synthetic, {len(sweep['db'])} transactions, "
        f"minsup {MINSUP:.0%})",
        format_table(
            [
                "engine", "workers", "serial_s", "parallel_s",
                "speedup", "shard_spans",
            ],
            sweep["rows"],
        ),
    )
    db = sweep["db"]
    counter = ThreadedBitmapCounter(workers=WORKER_COUNTS[-1])
    with counter:
        benchmark.pedantic(
            lambda: Apriori(counter=counter, max_level=MAX_LEVEL).mine(
                db, MINSUP
            ),
            rounds=1,
            iterations=1,
        )


def test_every_fanout_traced_per_shard(benchmark, sweep):
    """Each fanned-out level leaves one span per shard in the trace."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for record in sweep["records"]:
        assert record["shard_spans"] >= record["workers"]


def test_process_speedup_reported_on_capable_hardware(benchmark, sweep):
    """The process pool's ≥1.5× criterion, where it is measurable."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    cpus = os.cpu_count() or 1
    four = _leg(sweep, "process-pool", 4)
    if cpus >= 4 and len(sweep["db"]) >= 100_000:
        assert four["speedup"] >= 1.5, four
    else:
        # Single-core / small-scale runs still prove exactness; the
        # speedup numbers are informational (see the BENCH lines).
        assert four["exact"]


def test_bitmap_speedup_asserted(benchmark, sweep):
    """The bitmap engine's ≥2× criterion — asserted, not asserted away.

    The comparison is against the *serial engine baseline* (the thing a
    user gives up by not passing ``--engine bitmap``), which vectorized
    AND+popcount beats regardless of core count, so this assertion is
    NOT gated on ``cpu_count`` — only on the issue's ≥100k-transaction
    workload floor (small routine-tier runs assert exactness only).
    """
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    four = _leg(sweep, "bitmap-threads", 4)
    if len(sweep["db"]) >= 100_000:
        assert four["speedup"] >= 2.0, four
    else:
        assert four["exact"]
