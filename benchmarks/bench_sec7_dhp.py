"""Section 7 table: DHP with and without the OSSM.

Paper (OSSM built by Random-RC with n = 40 segments; DHP with 32 768
hash buckets): runtime 4.01 s → 1.94 s (~2×), candidate 2-itemsets
292 → 142 (~half). The OSSM prunes candidates *before* DHP's hash
filter sees them; survivors can still be pruned by the hash table, so
the structures compose.

Reproduced shape: C2 with the OSSM is well below C2 without it, output
identical, and DHP's own hash filtering still contributes on top of
the OSSM (the composed count is at most the minimum of either alone).
Runtime caveat: our DHP counts candidates with per-transaction subset
enumeration, whose cost is largely candidate-count independent, so the
C2 reduction does not translate into wall-clock the way the paper's
hash-tree C code does — the C2 column is the machine-independent
signal (see EXPERIMENTS.md).
"""

import time

import pytest

from _shared import emit_bench, report
from repro.bench import MINSUP, drifting_synthetic_pages, format_table
from repro.core import RandomRCSegmenter
from repro.mining import DHP, OSSMPruner

P = 500
N_USER = 40
N_BUCKETS = 32768


def _run():
    pages = drifting_synthetic_pages(P)
    db = pages.database
    segmentation = RandomRCSegmenter(n_mid=200, seed=0).segment(
        pages, N_USER
    )
    pruner = OSSMPruner(segmentation.ossm)
    rows = {}
    for label, miner in (
        ("dhp", DHP(n_buckets=N_BUCKETS, max_level=3)),
        ("dhp+ossm", DHP(n_buckets=N_BUCKETS, pruner=pruner, max_level=3)),
    ):
        start = time.perf_counter()
        result = miner.mine(db, MINSUP)
        elapsed = time.perf_counter() - start
        rows[label] = (result, elapsed)
    return {"rows": rows, "segmentation": segmentation}


@pytest.fixture(scope="module")
def experiment(once):
    return once("sec7dhp", _run)


def test_sec7_table(benchmark, experiment):
    rows = [
        [
            label,
            round(elapsed, 3),
            result.level(2).candidates_counted,
            result.n_frequent,
        ]
        for label, (result, elapsed) in experiment["rows"].items()
    ]
    report(
        "Section 7 — DHP with/without the OSSM "
        f"(Random-RC, n={N_USER}, {N_BUCKETS} buckets)",
        format_table(["algorithm", "runtime_s", "C2", "frequent"], rows),
    )
    for label, (result, elapsed) in experiment["rows"].items():
        emit_bench({
            "bench": "sec7_dhp",
            "variant": label,
            "runtime_seconds": round(elapsed, 4),
            "c2_candidates": result.level(2).candidates_counted,
            "n_frequent": result.n_frequent,
        })
    pages = drifting_synthetic_pages(P)
    miner = DHP(n_buckets=N_BUCKETS, max_level=3)
    benchmark.pedantic(
        lambda: miner.mine(pages.database, MINSUP), rounds=1, iterations=1
    )


def test_sec7_c2_reduced(benchmark, experiment):
    rows = experiment["rows"]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    plain, _ = rows["dhp"]
    combined, _ = rows["dhp+ossm"]
    assert combined.same_itemsets(plain)
    assert (
        combined.level(2).candidates_counted
        < plain.level(2).candidates_counted
    )


def test_sec7_structures_compose(benchmark, experiment):
    """OSSM + hash filter prune at least as much as either alone."""
    pages = drifting_synthetic_pages(P)
    db = pages.database
    pruner = OSSMPruner(experiment["segmentation"].ossm)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    from repro.mining import Apriori
    from repro.mining.counting import TidsetCounter

    ossm_only = Apriori(
        pruner=pruner, counter=TidsetCounter(), max_level=2
    ).mine(db, MINSUP)
    composed = experiment["rows"]["dhp+ossm"][0]
    assert (
        composed.level(2).candidates_counted
        <= ossm_only.level(2).candidates_counted
    )
