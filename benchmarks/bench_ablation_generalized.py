"""Ablation A3: the generalized OSSM (footnote 3) — tightness vs space.

Footnote 3 of the paper suggests storing segment supports of itemsets
beyond singletons to tighten the Equation (1) bound. This ablation
builds the k=1 (classic) and k=2 maps over the same segmentation and
compares (a) pruning power on 3-itemset candidates and (b) nominal
storage — quantifying why the paper's main structure stays at
singletons.
"""

import pytest

from _shared import emit_bench, report
from repro.bench import MINSUP, format_table, paged, regular_synthetic
from repro.core import GeneralizedOSSM, RandomSegmenter
from repro.mining import (
    Apriori,
    GeneralizedOSSMPruner,
    OSSMPruner,
)
from repro.mining.counting import TidsetCounter

N_USER = 10  # generalized maps are per-segment-expensive; keep n small


def _run():
    db = regular_synthetic()
    pages = paged(db)
    segmentation = RandomSegmenter(seed=0).segment(pages, N_USER)
    segments = pages.segment_databases(segmentation.groups)
    g2 = GeneralizedOSSM.from_segments(segments, max_cardinality=2)

    results = {}
    for label, pruner in (
        ("classic k=1", OSSMPruner(segmentation.ossm)),
        ("generalized k=2", GeneralizedOSSMPruner(g2)),
    ):
        miner = Apriori(pruner=pruner, counter=TidsetCounter(), max_level=3)
        results[label] = miner.mine(db, MINSUP)
    sizes = {
        "classic k=1": segmentation.ossm.nominal_size_bytes(),
        "generalized k=2": g2.nominal_size_bytes(),
    }
    return {"results": results, "sizes": sizes}


@pytest.fixture(scope="module")
def experiment(once):
    return once("ablation_generalized", _run)


def test_generalized_table(benchmark, experiment):
    rows = []
    for label, result in experiment["results"].items():
        rows.append(
            [
                label,
                result.level(2).candidates_counted,
                result.candidates_counted(3),
                round(experiment["sizes"][label] / 1e6, 3),
            ]
        )
    report(
        f"Ablation A3 — generalized OSSM (n={N_USER} segments)",
        format_table(
            ["structure", "C2_counted", "C3_counted", "nominal_MB"], rows
        ),
    )
    for label, result in experiment["results"].items():
        emit_bench({
            "bench": "ablation_generalized",
            "variant": label,
            "c2_candidates": result.level(2).candidates_counted,
            "c3_candidates": result.candidates_counted(3),
            "nominal_mb": round(experiment["sizes"][label] / 1e6, 4),
        })
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_generalized_is_tighter(benchmark, experiment):
    results = experiment["results"]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    classic = results["classic k=1"]
    general = results["generalized k=2"]
    assert general.same_itemsets(classic)
    # k=2 supports are exact for pairs: C2 counting shrinks to the
    # truly frequent pairs; C3 can only shrink too.
    assert (
        general.level(2).candidates_counted
        <= classic.level(2).candidates_counted
    )
    assert general.candidates_counted(3) <= classic.candidates_counted(3)


def test_generalized_costs_space(benchmark, experiment):
    """The trade-off that keeps the paper's structure at singletons."""
    sizes = experiment["sizes"]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert sizes["generalized k=2"] > 10 * sizes["classic k=1"]
