"""Figure 6: the bubble-list optimization — cost (a) and speedup (b).

Paper (hybrids at P = 50 000, n_mid = 200, n_user = 40; bubble list
built at minsup 0.25 %, queries run at 1 %): (a) segmentation cost
drops drastically with a short bubble list — Random-Greedy falls from
1051 s (no bubble) to ~10 s; (b) the OSSM's speedup is barely
compromised and grows mildly with the bubble length.

Reproduced shape, at P = 500 on the drifting workload:

* the *pair-term* count — loss evaluations × C(b, 2), the work a
  paper-literal O(b²) evaluator performs — falls by orders of
  magnitude as the bubble shrinks (our production evaluator is the
  O(b log b) sort of DESIGN.md §2, so wall-clock falls less steeply
  but monotonically);
* the C2 pruning ratio degrades only mildly at small bubbles and
  saturates as the bubble approaches the full domain;
* the bubble is built at 0.25 % but every query runs at 1 % — the
  query-independence claim, re-verified by the harness's equality
  check in every cell.
"""

import pytest

from _shared import emit_bench, report
from repro.bench import (
    BUBBLE_MINSUP,
    MINSUP,
    baseline,
    drifting_synthetic_pages,
    evaluate,
    format_table,
)
from repro.core import RandomGreedySegmenter, RandomRCSegmenter, bubble_list_for

P = 500
N_MID = 200
N_USER = 40

#: Bubble sizes as fractions of the item domain (paper x-axis: 0-60 %).
BUBBLE_FRACTIONS = (0.05, 0.20, 0.60, 1.00)

STRATEGIES = (
    ("random-rc", RandomRCSegmenter),
    ("random-greedy", RandomGreedySegmenter),
)


def pair_terms(loss_evals: int, bubble_items: int) -> int:
    """Work of the paper-literal O(b²) loss evaluator, in pair terms."""
    return loss_evals * (bubble_items * (bubble_items - 1) // 2)


def _run():
    pages = drifting_synthetic_pages(P)
    db = pages.database
    base = baseline(db, MINSUP)
    cells = {}
    for name, cls in STRATEGIES:
        for fraction in BUBBLE_FRACTIONS:
            size = max(2, int(fraction * db.n_items))
            items = (
                bubble_list_for(db, BUBBLE_MINSUP, size)
                if fraction < 1.0
                else None
            )
            segmenter = cls(n_mid=N_MID, seed=0, items=items)
            segmentation = segmenter.segment(pages, N_USER)
            cell = evaluate(db, segmentation.ossm, base, segmentation)
            b = size if items is not None else db.n_items
            cells[(name, fraction)] = (segmentation, cell, b)
    return {"cells": cells, "baseline": base}


@pytest.fixture(scope="module")
def experiment(once):
    return once("fig6", _run)


def test_fig6a_segmentation_cost(benchmark, experiment):
    rows = []
    for name, _ in STRATEGIES:
        for fraction in BUBBLE_FRACTIONS:
            segmentation, _cell, b = experiment["cells"][(name, fraction)]
            rows.append(
                [
                    name,
                    f"{fraction:.0%}",
                    b,
                    round(segmentation.elapsed_seconds, 3),
                    pair_terms(segmentation.loss_evaluations, b),
                ]
            )
    report(
        f"Figure 6(a) — segmentation cost vs bubble size (P={P}, "
        f"bubble built at {BUBBLE_MINSUP:.2%}, queried at {MINSUP:.0%})",
        format_table(
            ["strategy", "bubble", "b_items", "seg_time_s", "pair_terms"],
            rows,
        ),
    )
    for name, _ in STRATEGIES:
        for fraction in BUBBLE_FRACTIONS:
            segmentation, cell, b = experiment["cells"][(name, fraction)]
            emit_bench({
                "bench": "fig6",
                "algorithm": name,
                "case": f"bubble={fraction:.2f}",
                "seg_seconds": round(segmentation.elapsed_seconds, 4),
                "pair_terms": pair_terms(
                    segmentation.loss_evaluations, b
                ),
                "speedup": round(cell.speedup, 4),
                "c2_ratio": round(cell.c2_ratio, 5),
            })
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for name, _ in STRATEGIES:
        smallest = experiment["cells"][(name, BUBBLE_FRACTIONS[0])]
        full = experiment["cells"][(name, 1.0)]
        # The paper-literal cost model collapses by orders of magnitude.
        assert pair_terms(
            smallest[0].loss_evaluations, smallest[2]
        ) * 50 < pair_terms(full[0].loss_evaluations, full[2])
        # And the real (sort-based) clock is monotone too.
        assert (
            smallest[0].elapsed_seconds <= full[0].elapsed_seconds * 1.2
        )


def test_fig6b_speedup_not_compromised(benchmark, experiment):
    rows = []
    for name, _ in STRATEGIES:
        for fraction in BUBBLE_FRACTIONS:
            _segmentation, cell, _b = experiment["cells"][(name, fraction)]
            rows.append(
                [
                    name,
                    f"{fraction:.0%}",
                    round(cell.speedup, 2),
                    round(cell.c2_ratio, 3),
                ]
            )
    report(
        "Figure 6(b) — speedup/pruning vs bubble size "
        f"(queried at {MINSUP:.0%})",
        format_table(["strategy", "bubble", "speedup", "C2_ratio"], rows),
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for name, _ in STRATEGIES:
        small = experiment["cells"][(name, BUBBLE_FRACTIONS[0])][1]
        full = experiment["cells"][(name, 1.0)][1]
        # A 5% bubble already retains most of the pruning power: the
        # quality penalty is bounded (paper: "not compromised
        # significantly").
        assert small.c2_ratio <= full.c2_ratio + 0.25
        assert small.c2_ratio < 1.0


def test_fig6_query_independence(benchmark, experiment):
    """Bubble built at 0.25%, used at 1% — and any other threshold."""
    from repro.mining import Apriori, OSSMPruner
    from repro.mining.counting import TidsetCounter

    pages = drifting_synthetic_pages(P)
    db = pages.database
    ossm = experiment["cells"][("random-greedy", 0.20)][0].ossm
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for minsup in (0.005, 0.03):
        plain = Apriori(counter=TidsetCounter(), max_level=2).mine(db, minsup)
        fast = Apriori(
            pruner=OSSMPruner(ossm), counter=TidsetCounter(), max_level=2
        ).mine(db, minsup)
        assert plain.same_itemsets(fast), minsup
