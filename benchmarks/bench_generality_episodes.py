"""Ablation A7: generality — the OSSM accelerating episode mining.

The paper's introduction and conclusion claim the OSSM applies to "the
mining of any of the above classes of patterns", episodes included
(reference [13]); footnote 1 gives the mapping (a transaction = the
events of a sliding window). This bench exercises that claim end to
end on the alarm workload (the paper's Nokia scenario is exactly
episode-mining territory): one OSSM built over the windowed view,
pruning both parallel and serial episode candidates.

Shape asserted: identical episode sets with and without the OSSM, and
fewer candidates counted with it — for both episode flavours.
"""

import time

import pytest

from _shared import emit_bench, report
from repro.bench import format_table
from repro.core import GreedySegmenter
from repro.data import EventSequence, PagedDatabase
from repro.mining import (
    EpisodeMiner,
    OSSMPruner,
)

N_WINDOWS = 800
N_TYPES = 60
WIDTH = 3
MINSUP = 0.2
N_USER = 16

#: Serial counting is quadratically heavier, so its level cap is lower;
#: the comparison is per-flavour (plain vs +ossm), never across caps.
MAX_LEVEL = {"parallel": 3, "serial": 2}


def _run():
    from repro.data import AlarmConfig, AlarmStreamGenerator

    alarm_db = AlarmStreamGenerator(
        AlarmConfig(
            n_windows=N_WINDOWS,
            n_alarm_types=N_TYPES,
            cascade_rate=0.25,
            background_rate=1.0,
            drift_period=100,
            seed=42,
        )
    ).generate()
    sequence = EventSequence.from_database(alarm_db)
    from repro.data.events import WindowView

    window_db = WindowView(sequence, WIDTH).to_database()
    paged = PagedDatabase(window_db, page_size=40)
    ossm = GreedySegmenter().segment(paged, N_USER).ossm
    pruner = OSSMPruner(ossm)

    rows = {}
    for kind in ("parallel", "serial"):
        for label, chosen in ((kind, None), (f"{kind}+ossm", pruner)):
            miner = EpisodeMiner(
                WIDTH, kind=kind, pruner=chosen, max_level=MAX_LEVEL[kind]
            )
            start = time.perf_counter()
            result = miner.mine(sequence, MINSUP)
            rows[label] = (result, time.perf_counter() - start)
    return rows


@pytest.fixture(scope="module")
def experiment(once):
    return once("generality_episodes", _run)


def test_episode_table(benchmark, experiment):
    rows = [
        [
            label,
            round(elapsed, 3),
            result.candidates_counted(),
            result.n_frequent,
        ]
        for label, (result, elapsed) in experiment.items()
    ]
    report(
        "Ablation A7 — OSSM generality: WINEPI episode mining "
        f"(alarm stream, width={WIDTH}, minsup {MINSUP:.0%})",
        format_table(
            ["miner", "runtime_s", "candidates_counted", "frequent"], rows
        ),
    )
    for label, (result, elapsed) in experiment.items():
        emit_bench({
            "bench": "generality_episodes",
            "variant": label,
            "runtime_seconds": round(elapsed, 4),
            "candidates_counted": result.candidates_counted(),
            "n_frequent": result.n_frequent,
        })
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_parallel_episodes_pruned_losslessly(benchmark, experiment):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    plain, _ = experiment["parallel"]
    fast, _ = experiment["parallel+ossm"]
    assert fast.frequent == plain.frequent
    assert fast.candidates_counted() <= plain.candidates_counted()


def test_serial_episodes_pruned_losslessly(benchmark, experiment):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    plain, _ = experiment["serial"]
    fast, _ = experiment["serial+ossm"]
    assert fast.frequent == plain.frequent
    assert fast.candidates_counted() <= plain.candidates_counted()


def test_serial_supports_dominated_by_parallel(benchmark, experiment):
    """The soundness chain the serial pruning rests on."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    parallel, _ = experiment["parallel"]
    serial, _ = experiment["serial"]
    for episode, support in serial.frequent.items():
        shadow = tuple(sorted(set(episode)))
        if shadow in parallel.frequent:
            assert support <= parallel.frequent[shadow]
