"""Figure 5(a): pure segmentation strategies — cost vs quality.

Paper (P = 500 pages, n_user = 40, regular-synthetic): Random segments
in ~0.02 s for 2.6× speedup; RC needs 2791 s for 5.9×; Greedy 5439 s
for 7.7×. The trade-off the section discusses: elaborate algorithms
buy speedup with a large one-time segmentation cost.

Reproduced shape: segmentation-time ordering Random ≪ RC < Greedy
(also visible machine-independently in the loss-evaluation counts:
0 ≪ RC < Greedy) with the speedup/pruning ordering reversed. Our
absolute segmentation times are *much* smaller than the paper's
because the O(m²) per-pair loss of their implementation is an
O(m log m) sort here (DESIGN.md §2) — the orderings are what carries.

Workload note: run on the *drifting* synthetic collection (Quest
baskets whose pattern popularity drifts across eras — see
``repro.bench.workloads.drifting_synthetic_pages``). At this P a
perfectly stationary Quest stream has no segment-to-segment frequency
variability left for Equation (1) to exploit; real months-long logs —
and evidently the paper's collections — do (the premise stated in the
paper's introduction).
"""

import pytest

from _shared import emit_bench, report
from repro.bench import (
    MINSUP,
    baseline,
    evaluate,
    format_table,
    drifting_synthetic_pages,
)
from repro.core import GreedySegmenter, RandomSegmenter, RCSegmenter

#: The paper's Figure 5(a) parameters, scaled by tier page size.
P = 500
N_USER = 40

STRATEGIES = (
    ("random", lambda: RandomSegmenter(seed=0)),
    ("rc", lambda: RCSegmenter(seed=0)),
    ("greedy", lambda: GreedySegmenter()),
)


def _run():
    pages = drifting_synthetic_pages(P)
    db = pages.database
    base = baseline(db, MINSUP)
    cells = {}
    for name, factory in STRATEGIES:
        segmentation = factory().segment(pages, N_USER)
        cells[name] = (
            segmentation,
            evaluate(db, segmentation.ossm, base, segmentation),
        )
    return {"cells": cells, "baseline": base}


@pytest.fixture(scope="module")
def experiment(once):
    return once("fig5a", _run)


def test_fig5a_table(benchmark, experiment):
    rows = []
    for name, _ in STRATEGIES:
        segmentation, cell = experiment["cells"][name]
        rows.append(
            [
                name,
                round(segmentation.elapsed_seconds, 3),
                segmentation.loss_evaluations,
                round(cell.speedup, 2),
                round(cell.c2_ratio, 3),
            ]
        )
    report(
        f"Figure 5(a) — pure strategies (P={P}, n_user={N_USER})",
        format_table(
            ["strategy", "seg_time_s", "loss_evals", "speedup", "C2_ratio"],
            rows,
        ),
    )
    for name, _ in STRATEGIES:
        segmentation, cell = experiment["cells"][name]
        emit_bench({
            "bench": "fig5a",
            "algorithm": name,
            "n_user": N_USER,
            "seg_seconds": round(segmentation.elapsed_seconds, 4),
            "loss_evaluations": segmentation.loss_evaluations,
            "speedup": round(cell.speedup, 4),
            "c2_ratio": round(cell.c2_ratio, 5),
        })
    pages = drifting_synthetic_pages(P)
    benchmark.pedantic(
        lambda: RandomSegmenter(seed=0).segment(pages, N_USER),
        rounds=1,
        iterations=1,
    )


def test_fig5a_cost_ordering(benchmark, experiment):
    """Random ≪ RC < Greedy in segmentation work."""
    cells = experiment["cells"]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert cells["random"][0].loss_evaluations == 0
    assert (
        cells["rc"][0].loss_evaluations
        < cells["greedy"][0].loss_evaluations
    )
    assert (
        cells["random"][0].elapsed_seconds
        < cells["greedy"][0].elapsed_seconds
    )


def test_fig5a_quality_ordering(benchmark, experiment):
    """Greedy's OSSM prunes at least as well as Random's."""
    cells = experiment["cells"]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert (
        cells["greedy"][1].c2_ratio <= cells["random"][1].c2_ratio + 0.02
    )


def test_fig5a_benchmark_greedy_segmentation(benchmark):
    """Time the expensive strategy itself (pytest-benchmark target)."""
    pages = drifting_synthetic_pages(P)
    benchmark.pedantic(
        lambda: GreedySegmenter().segment(pages, N_USER),
        rounds=1,
        iterations=1,
    )
