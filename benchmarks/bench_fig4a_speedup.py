"""Figure 4(a): speedup of Apriori+OSSM over plain Apriori vs n_user.

Paper: regular-synthetic data, m = 1000 items, minsup 1 %; speedup
rises with the segment budget (≈7× at 20 segments to ≈50× at 150 for
Greedy) and the algorithms rank Greedy ≥ RC ≥ Random throughout.

Reproduced shape: speedup > 1 everywhere, rising with n_user, with the
Greedy ≥ RC ≥ Random pruning-power ordering that drives it (wall-clock
factors are compressed relative to the paper's C code because Python's
per-candidate constant is larger; Figure 4(b) shows the same cells in
machine-independent candidate counts).
"""

import pytest

from _shared import FIG4_N_USERS, emit_bench, fig4_sweep, report
from repro.bench import MINSUP, format_table, regular_synthetic
from repro.mining import Apriori, OSSMPruner
from repro.mining.counting import TidsetCounter


@pytest.fixture(scope="module")
def sweep(once):
    return once("fig4", fig4_sweep)


def test_fig4a_speedup_series(benchmark, sweep):
    """Render the Figure 4(a) series; benchmark the best cell's mining."""
    cells = sweep["cells"]
    rows = [
        [n_user]
        + [
            round(cells[a][n_user].speedup, 2)
            for a in ("greedy", "rc", "random")
        ]
        + [round(cells["greedy"][n_user].ossm_mb, 3)]
        for n_user in FIG4_N_USERS
    ]
    report(
        "Figure 4(a) — speedup vs number of segments "
        f"(regular-synthetic, minsup {MINSUP:.0%})",
        format_table(
            ["n_user", "greedy", "rc", "random", "ossm_MB(greedy)"], rows
        ),
    )
    for algorithm in ("greedy", "rc", "random"):
        for n_user in FIG4_N_USERS:
            cell = cells[algorithm][n_user]
            emit_bench({
                "bench": "fig4a",
                "algorithm": algorithm,
                "n_user": n_user,
                "speedup": round(cell.speedup, 4),
                "ossm_mb": round(cell.ossm_mb, 4),
            })

    db = regular_synthetic()
    miner = Apriori(
        pruner=OSSMPruner(sweep["ossms"]["greedy"][160]),
        counter=TidsetCounter(),
        max_level=sweep["baseline"].max_level,
    )
    benchmark.pedantic(lambda: miner.mine(db, MINSUP), rounds=1, iterations=1)
    assert cells["greedy"][160].speedup > 1.0


def test_fig4a_speedup_trend_rises_with_segments(benchmark, sweep):
    """More segments → tighter bounds → at least as much pruning."""
    cells = sweep["cells"]["greedy"]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert cells[160].c2_ratio <= cells[20].c2_ratio
    assert cells[160].speedup >= cells[20].speedup * 0.8  # noise guard


def test_fig4a_all_algorithms_beat_baseline(benchmark, sweep):
    """Even Random offers a real speedup (the paper's observation that
    Random alone is better than an order of magnitude; compressed
    here by the Python constant but still > 1)."""
    cells = sweep["cells"]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for algorithm in ("greedy", "rc", "random"):
        assert cells[algorithm][160].speedup > 1.0, algorithm


def test_fig4a_ossm_stays_lightweight(benchmark, sweep):
    """Section 6.2: ~0.2 MB at 100 segments, ~0.3 MB at 150 (m=1000).

    At the default scale m is also 1000, so the nominal sizes match the
    paper's numbers exactly for the same n_user.
    """
    cells = sweep["cells"]["greedy"]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    m = regular_synthetic().n_items
    assert cells[160].ossm_mb == pytest.approx(160 * m * 2 / 1e6)
