"""Figure 4(b): fraction of candidate 2-itemsets NOT pruned, vs n_user.

Paper: with the OSSM produced by Greedy at 150 segments, only ~3 % of
the candidate 2-itemsets Apriori would ordinarily count survive; the
curves order Random > RC > Greedy (Random keeps the most candidates)
and all fall as n_user grows.

Reproduced shape: ratios strictly below 1, decreasing in n_user, with
Greedy keeping no more than Random at every budget. This is the
machine-independent view of the same cells as Figure 4(a).
"""

import pytest

from _shared import FIG4_N_USERS, emit_bench, fig4_sweep, report
from repro.bench import MINSUP, format_table


@pytest.fixture(scope="module")
def sweep(once):
    return once("fig4", fig4_sweep)


def test_fig4b_candidate_ratio_series(benchmark, sweep):
    cells = sweep["cells"]
    rows = [
        [n_user]
        + [
            round(cells[a][n_user].c2_ratio, 4)
            for a in ("random", "rc", "greedy")
        ]
        for n_user in FIG4_N_USERS
    ]
    report(
        "Figure 4(b) — fraction of candidate 2-itemsets not pruned "
        f"(regular-synthetic, minsup {MINSUP:.0%}; 1.0 = plain Apriori)",
        format_table(["n_user", "random", "rc", "greedy"], rows),
    )
    for algorithm in ("random", "rc", "greedy"):
        for n_user in FIG4_N_USERS:
            emit_bench({
                "bench": "fig4b",
                "algorithm": algorithm,
                "n_user": n_user,
                "c2_ratio": round(cells[algorithm][n_user].c2_ratio, 5),
            })
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for algorithm in ("random", "rc", "greedy"):
        assert cells[algorithm][160].c2_ratio < 1.0


def test_fig4b_ratio_decreases_with_segments(benchmark, sweep):
    """Refinement monotonicity, observed end-to-end."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for algorithm in ("random", "rc", "greedy"):
        series = sweep["cells"][algorithm]
        assert series[160].c2_ratio <= series[20].c2_ratio, algorithm


def test_fig4b_greedy_prunes_at_least_random(benchmark, sweep):
    """The paper's ordering: Greedy's OSSM is the most effective."""
    cells = sweep["cells"]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for n_user in FIG4_N_USERS:
        assert (
            cells["greedy"][n_user].c2_ratio
            <= cells["random"][n_user].c2_ratio + 0.02
        ), n_user
