"""Resilience benchmarks: recovery latency and degraded-mode throughput.

Two questions a fault-tolerant deployment cares about, answered with
the same exactness-first discipline as the scaling benchmarks:

* **Recovery latency** — how much wall time does one injected worker
  crash add to a parallel Apriori run? The supervised pool detects the
  dead worker, rebuilds with backoff, and resubmits the level's batch,
  so the answer is "one pool rebuild plus one repeated level", and the
  mined itemsets must stay bit-identical to the serial reference.
* **Degraded-mode throughput** — with the engine circuit breaker
  forced open, every parallel counter construction and count degrades
  to the serial engine. The benchmark reports the candidates/second
  both ways so the cost of running degraded is a number, not a guess.

Both cases emit ``BENCH {json}`` lines and accumulate into
``BENCH_resilience.json`` at the repo root via ``_shared.emit_bench``.
"""

from __future__ import annotations

import time

from _shared import emit_bench, report
from repro.bench import MINSUP, format_table
from repro.bench.workloads import QuestConfig, QuestGenerator, current_scale
from repro.mining import Apriori
from repro.mining.counting import parallel_breaker
from repro.parallel import ParallelCounter
from repro.resilience import FaultPlan, use_faults

MAX_LEVEL = 3
WORKERS = 2


def _workload():
    scale = current_scale()
    config = QuestConfig(
        n_transactions=scale.n_transactions,
        n_items=scale.n_items,
        avg_transaction_len=10.0,
        avg_pattern_len=4.0,
        n_patterns=scale.n_patterns,
        seed=21,
    )
    return QuestGenerator(config).generate()


def _timed_mine(db, counter=None):
    miner = Apriori(counter=counter, max_level=MAX_LEVEL)
    start = time.perf_counter()
    result = miner.mine(db, MINSUP)
    return result, time.perf_counter() - start


def test_crash_recovery_latency():
    db = _workload()
    serial, _ = _timed_mine(db)
    parallel_breaker().reset()

    with ParallelCounter(workers=WORKERS) as counter:
        clean, clean_seconds = _timed_mine(db, counter)
    assert clean.same_itemsets(serial)

    plan = FaultPlan.from_spec("pool.worker_crash:times=1", seed=5)
    try:
        with use_faults(plan):
            with ParallelCounter(workers=WORKERS) as counter:
                crashed, crashed_seconds = _timed_mine(db, counter)
    finally:
        parallel_breaker().reset()
    assert crashed.same_itemsets(serial), (
        "recovery from an injected worker crash must stay exact"
    )

    record = {
        "bench": "resilience",
        "case": "crash_recovery",
        "workers": WORKERS,
        "n_transactions": len(db),
        "minsup": MINSUP,
        "max_level": MAX_LEVEL,
        "clean_seconds": round(clean_seconds, 4),
        "with_crash_seconds": round(crashed_seconds, 4),
        "recovery_overhead_seconds": round(
            crashed_seconds - clean_seconds, 4
        ),
        "exact": True,
    }
    emit_bench(record)
    report(
        "Resilience — one injected worker crash (supervised pool)",
        format_table(
            ["clean_s", "with_crash_s", "overhead_s"],
            [[
                round(clean_seconds, 3),
                round(crashed_seconds, 3),
                round(crashed_seconds - clean_seconds, 3),
            ]],
        ),
    )


def test_degraded_mode_throughput():
    db = _workload()
    breaker = parallel_breaker()
    breaker.reset()

    with ParallelCounter(workers=WORKERS) as counter:
        healthy, healthy_seconds = _timed_mine(db, counter)

    # Trip the breaker: every count now degrades to the serial engine.
    try:
        while not breaker.is_open:
            breaker.record_failure()
        with ParallelCounter(workers=WORKERS) as counter:
            degraded, degraded_seconds = _timed_mine(db, counter)
    finally:
        breaker.reset()
    assert degraded.same_itemsets(healthy), (
        "degraded (serial) counting must stay exact"
    )

    counted = healthy.candidates_counted()
    record = {
        "bench": "resilience",
        "case": "degraded_throughput",
        "workers": WORKERS,
        "n_transactions": len(db),
        "minsup": MINSUP,
        "max_level": MAX_LEVEL,
        "candidates_counted": counted,
        "healthy_seconds": round(healthy_seconds, 4),
        "degraded_seconds": round(degraded_seconds, 4),
        "healthy_candidates_per_second": round(
            counted / healthy_seconds, 1
        ) if healthy_seconds else 0.0,
        "degraded_candidates_per_second": round(
            counted / degraded_seconds, 1
        ) if degraded_seconds else 0.0,
        "exact": True,
    }
    emit_bench(record)
    report(
        "Resilience — circuit breaker open (parallel degraded to serial)",
        format_table(
            ["healthy_s", "degraded_s", "healthy_c/s", "degraded_c/s"],
            [[
                round(healthy_seconds, 3),
                round(degraded_seconds, 3),
                record["healthy_candidates_per_second"],
                record["degraded_candidates_per_second"],
            ]],
        ),
    )
