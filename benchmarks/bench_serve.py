"""Closed-loop load test of the online bound-query service.

A fleet of client coroutines issues bound queries back-to-back (each
client sends its next query only after the previous answer arrives —
a closed loop, so the offered load adapts to service speed). The
query stream is skewed: itemsets are drawn from a small popular pool
plus a long uniform tail, the access pattern the epoch-tagged LRU
cache exists for.

Emits one ``BENCH {json}`` line with throughput, p50/p99 latency, and
the cache hit rate, and asserts:

* every served bound equals the serial Equation (1) value;
* the hit rate on the skewed stream is strictly positive.

Scale knobs: ``REPRO_SERVE_BENCH_QUERIES`` overrides the per-client
query count.
"""

from __future__ import annotations

import asyncio
import os
import random
import time

from _shared import emit_bench, report
from repro.bench import format_table
from repro.bench.workloads import QuestConfig, QuestGenerator, current_scale
from repro.core import GreedySegmenter
from repro.data.pages import PagedDatabase
from repro.serve import BoundQueryService

N_CLIENTS = 8
POPULAR_POOL = 32
TAIL_POOL = 512
POPULAR_SHARE = 0.7
N_SEGMENTS = 40


def _workload():
    scale = current_scale()
    config = QuestConfig(
        n_transactions=scale.n_transactions,
        n_items=scale.n_items,
        avg_transaction_len=10.0,
        avg_pattern_len=4.0,
        n_patterns=scale.n_patterns,
        seed=13,
    )
    return QuestGenerator(config).generate()


def _query_stream(n_items: int, n_queries: int, seed: int):
    """Skewed itemset stream: hot pool with a uniform cold tail."""
    rng = random.Random(seed)

    def draw_itemset():
        size = rng.choice((1, 2, 2, 3))
        return tuple(sorted(rng.sample(range(n_items), size)))

    popular = [draw_itemset() for _ in range(POPULAR_POOL)]
    tail = [draw_itemset() for _ in range(TAIL_POOL)]
    stream = []
    for _ in range(n_queries):
        if rng.random() < POPULAR_SHARE:
            stream.append(rng.choice(popular))
        else:
            stream.append(rng.choice(tail))
    return stream


async def _closed_loop(service, streams):
    """Each client issues its stream back-to-back; returns latencies."""
    latencies: list[float] = []

    async def client(stream):
        for itemset in stream:
            start = time.perf_counter()
            await service.query(itemset)
            latencies.append(time.perf_counter() - start)

    await asyncio.gather(*(client(stream) for stream in streams))
    return latencies


def _percentile(sorted_values: list[float], q: float) -> float:
    index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[index]


def test_serve_closed_loop_load():
    db = _workload()
    paged = PagedDatabase(db, page_size=100)
    ossm = GreedySegmenter().segment(paged, n_segments=N_SEGMENTS).ossm

    per_client = int(os.environ.get("REPRO_SERVE_BENCH_QUERIES", "250"))
    streams = [
        _query_stream(ossm.n_items, per_client, seed=100 + client)
        for client in range(N_CLIENTS)
    ]

    service = BoundQueryService(ossm, cache_size=2048, slo_target=0.25)

    async def run():
        async with service:
            start = time.perf_counter()
            latencies = await _closed_loop(service, streams)
            wall = time.perf_counter() - start

            # Exactness spot-check: replay a sample against the serial
            # Equation (1) path.
            sample = streams[0][:50]
            served = await service.query_batch(sample)
            serial = [ossm.upper_bound(itemset) for itemset in sample]
            assert served == serial
            return latencies, wall

    latencies, wall = asyncio.run(run())
    stats = service.stats()
    hit_rate = stats["cache"]["hit_rate"]
    assert hit_rate > 0, "skewed stream must produce cache hits"

    n_queries = len(latencies)
    latencies.sort()
    rolling = stats["latency"]
    slo = stats["slo"]
    record = {
        "bench": "serve_closed_loop",
        "clients": N_CLIENTS,
        "queries": n_queries,
        "wall_seconds": round(wall, 4),
        "throughput_qps": round(n_queries / wall, 1),
        "p50_ms": round(_percentile(latencies, 0.50) * 1e3, 3),
        "p99_ms": round(_percentile(latencies, 0.99) * 1e3, 3),
        "service_p50_ms": rolling["p50_ms"],
        "service_p95_ms": rolling["p95_ms"],
        "service_p99_ms": rolling["p99_ms"],
        "slo_violations": slo["violations"],
        "slo_budget_remaining": round(slo["budget_remaining"], 4),
        "cache_hit_rate": round(hit_rate, 4),
        "cache_evictions": stats["cache"]["evictions"],
        "epoch": stats["epoch"],
    }
    emit_bench(record)

    rows = [
        [
            str(N_CLIENTS),
            str(n_queries),
            f"{record['throughput_qps']:.0f}",
            f"{record['p50_ms']:.2f}",
            f"{record['p99_ms']:.2f}",
            f"{record['service_p95_ms']:.2f}",
            f"{hit_rate:.0%}",
            f"{slo['budget_remaining']:.0%}",
        ]
    ]
    report(
        "Online bound service — closed-loop load",
        format_table(
            ["clients", "queries", "qps", "p50 ms", "p99 ms",
             "svc p95 ms", "hit rate", "SLO budget"],
            rows,
        ),
    )
    # The service-side rolling estimator saw every batch.
    assert rolling["window_count"] > 0
