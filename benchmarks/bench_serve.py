"""Closed-loop load test of the online bound-query service.

A fleet of client coroutines issues bound queries back-to-back (each
client sends its next query only after the previous answer arrives —
a closed loop, so the offered load adapts to service speed). The
query stream is skewed: itemsets are drawn from a small popular pool
plus a long uniform tail, the access pattern the epoch-tagged LRU
cache exists for.

Emits one ``BENCH {json}`` line with throughput, p50/p99 latency, and
the cache hit rate, and asserts:

* every served bound equals the serial Equation (1) value;
* the hit rate on the skewed stream is strictly positive.

The second leg drives the full multi-tenant HTTP gateway: a 100+
client fleet spread over four tenants plus a quota-capped "metered"
tenant flooded past its budget, with a mid-run epoch bump on one
tenant. It asserts tenant isolation (the flood sheds 429 while the
other tenants' p99 stays within 2x their unloaded baseline), zero
dropped in-flight queries across the epoch swap, and exactness of
every served bound against the map of the epoch that answered it.

Scale knobs: ``REPRO_SERVE_BENCH_QUERIES`` overrides the per-client
query count of the in-process leg; ``REPRO_GATEWAY_BENCH_QUERIES``
does the same for the gateway fleet.
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import time

from _shared import emit_bench, report
from repro.bench import format_table
from repro.bench.workloads import QuestConfig, QuestGenerator, current_scale
from repro.core import GreedySegmenter, extend_ossm
from repro.data.pages import PagedDatabase
from repro.serve import (
    BoundQueryService,
    Gateway,
    TenantQuota,
    TenantRegistry,
)

N_CLIENTS = 8
POPULAR_POOL = 32
TAIL_POOL = 512
POPULAR_SHARE = 0.7
N_SEGMENTS = 40


def _workload():
    scale = current_scale()
    config = QuestConfig(
        n_transactions=scale.n_transactions,
        n_items=scale.n_items,
        avg_transaction_len=10.0,
        avg_pattern_len=4.0,
        n_patterns=scale.n_patterns,
        seed=13,
    )
    return QuestGenerator(config).generate()


def _query_stream(n_items: int, n_queries: int, seed: int):
    """Skewed itemset stream: hot pool with a uniform cold tail."""
    rng = random.Random(seed)

    def draw_itemset():
        size = rng.choice((1, 2, 2, 3))
        return tuple(sorted(rng.sample(range(n_items), size)))

    popular = [draw_itemset() for _ in range(POPULAR_POOL)]
    tail = [draw_itemset() for _ in range(TAIL_POOL)]
    stream = []
    for _ in range(n_queries):
        if rng.random() < POPULAR_SHARE:
            stream.append(rng.choice(popular))
        else:
            stream.append(rng.choice(tail))
    return stream


async def _closed_loop(service, streams):
    """Each client issues its stream back-to-back; returns latencies."""
    latencies: list[float] = []

    async def client(stream):
        for itemset in stream:
            start = time.perf_counter()
            await service.query(itemset)
            latencies.append(time.perf_counter() - start)

    await asyncio.gather(*(client(stream) for stream in streams))
    return latencies


def _percentile(sorted_values: list[float], q: float) -> float:
    index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[index]


def test_serve_closed_loop_load():
    db = _workload()
    paged = PagedDatabase(db, page_size=100)
    ossm = GreedySegmenter().segment(paged, n_segments=N_SEGMENTS).ossm

    per_client = int(os.environ.get("REPRO_SERVE_BENCH_QUERIES", "250"))
    streams = [
        _query_stream(ossm.n_items, per_client, seed=100 + client)
        for client in range(N_CLIENTS)
    ]

    service = BoundQueryService(ossm, cache_size=2048, slo_target=0.25)

    async def run():
        async with service:
            start = time.perf_counter()
            latencies = await _closed_loop(service, streams)
            wall = time.perf_counter() - start

            # Exactness spot-check: replay a sample against the serial
            # Equation (1) path.
            sample = streams[0][:50]
            served = await service.query_batch(sample)
            serial = [ossm.upper_bound(itemset) for itemset in sample]
            assert served == serial
            return latencies, wall

    latencies, wall = asyncio.run(run())
    stats = service.stats()
    hit_rate = stats["cache"]["hit_rate"]
    assert hit_rate > 0, "skewed stream must produce cache hits"

    n_queries = len(latencies)
    latencies.sort()
    rolling = stats["latency"]
    slo = stats["slo"]
    record = {
        "bench": "serve_closed_loop",
        "clients": N_CLIENTS,
        "queries": n_queries,
        "wall_seconds": round(wall, 4),
        "throughput_qps": round(n_queries / wall, 1),
        "p50_ms": round(_percentile(latencies, 0.50) * 1e3, 3),
        "p99_ms": round(_percentile(latencies, 0.99) * 1e3, 3),
        "service_p50_ms": rolling["p50_ms"],
        "service_p95_ms": rolling["p95_ms"],
        "service_p99_ms": rolling["p99_ms"],
        "slo_violations": slo["violations"],
        "slo_budget_remaining": round(slo["budget_remaining"], 4),
        "cache_hit_rate": round(hit_rate, 4),
        "cache_evictions": stats["cache"]["evictions"],
        "epoch": stats["epoch"],
    }
    emit_bench(record)

    rows = [
        [
            str(N_CLIENTS),
            str(n_queries),
            f"{record['throughput_qps']:.0f}",
            f"{record['p50_ms']:.2f}",
            f"{record['p99_ms']:.2f}",
            f"{record['service_p95_ms']:.2f}",
            f"{hit_rate:.0%}",
            f"{slo['budget_remaining']:.0%}",
        ]
    ]
    report(
        "Online bound service — closed-loop load",
        format_table(
            ["clients", "queries", "qps", "p50 ms", "p99 ms",
             "svc p95 ms", "hit rate", "SLO budget"],
            rows,
        ),
    )
    # The service-side rolling estimator saw every batch.
    assert rolling["window_count"] > 0


# --------------------------------------------------------------------------
# Multi-tenant gateway load test
# --------------------------------------------------------------------------

TENANTS = ("t0", "t1", "t2", "t3")
CLIENTS_PER_TENANT = 25  # 4 x 25 = 100 concurrent fleet clients
ABUSER_CLIENTS = 4
METERED_RATE = 40.0  # queries/s granted to the metered tenant


async def _exchange(reader, writer, method, path, body):
    """One keep-alive HTTP exchange; returns (status, parsed JSON)."""
    writer.write(
        f"{method} {path} HTTP/1.1\r\n"
        f"Content-Length: {len(body)}\r\n\r\n".encode("latin-1") + body
    )
    await writer.drain()
    head = await reader.readuntil(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    length = 0
    for line in lines[1:]:
        if line.lower().startswith("content-length:"):
            length = int(line.partition(":")[2])
    payload = await reader.readexactly(length) if length else b""
    return status, (json.loads(payload) if payload else None)


async def _fleet_client(gateway, tenant, stream, results, on_done):
    """Closed-loop client: one persistent connection, one query at a
    time, recording (epoch, bound, latency) per answer."""
    reader, writer = await asyncio.open_connection(
        gateway.host, gateway.port
    )
    try:
        path = f"/v1/tenants/{tenant}/bounds"
        for itemset in stream:
            body = json.dumps({"itemset": list(itemset)}).encode()
            start = time.perf_counter()
            status, payload = await _exchange(
                reader, writer, "POST", path, body
            )
            latency = time.perf_counter() - start
            assert status == 200, (tenant, itemset, status, payload)
            results[tenant].append(
                (itemset, payload["epoch"], payload["bound"], latency)
            )
            on_done()
    finally:
        writer.close()
        await writer.wait_closed()


async def _abuser_client(gateway, n_requests, counts):
    """Floods the metered tenant; tallies 200s vs 429 sheds."""
    reader, writer = await asyncio.open_connection(
        gateway.host, gateway.port
    )
    try:
        body = json.dumps({"itemset": [1]}).encode()
        for _ in range(n_requests):
            status, payload = await _exchange(
                reader, writer, "POST", "/v1/tenants/metered/bounds", body
            )
            assert status in (200, 429), (status, payload)
            counts[status] += 1
            if status == 429:
                assert payload["retry_after"] > 0
    finally:
        writer.close()
        await writer.wait_closed()


def _jain(values):
    """Jain's fairness index: 1.0 = perfectly even shares."""
    total = sum(values)
    squares = sum(v * v for v in values)
    return (total * total) / (len(values) * squares) if squares else 1.0


async def _run_fleet(gateway, streams, bump=None):
    """Drive the whole fleet; optionally publish *bump* to a tenant
    once half the fleet's queries have completed."""
    results = {tenant: [] for tenant in TENANTS}
    total = sum(len(s) for _, s in streams)
    done = 0
    halfway = asyncio.Event()

    def on_done():
        nonlocal done
        done += 1
        if done * 2 >= total:
            halfway.set()

    async def publisher():
        await halfway.wait()
        tenant, grown = bump
        path = f"/v1/tenants/{tenant}/ossm"
        reader, writer = await asyncio.open_connection(
            gateway.host, gateway.port
        )
        try:
            status, payload = await _exchange(
                reader, writer, "PUT", path, grown
            )
            assert status == 200 and payload["created"] is False
        finally:
            writer.close()
            await writer.wait_closed()

    tasks = [
        _fleet_client(gateway, tenant, stream, results, on_done)
        for tenant, stream in streams
    ]
    if bump is not None:
        tasks.append(publisher())
    start = time.perf_counter()
    await asyncio.gather(*tasks)
    return results, time.perf_counter() - start


def test_gateway_multi_tenant_load(tmp_path):
    db = _workload()
    paged = PagedDatabase(db, page_size=100)
    ossm = GreedySegmenter().segment(paged, n_segments=N_SEGMENTS).ossm
    extra = QuestGenerator(
        QuestConfig(
            n_transactions=max(200, len(db.transactions) // 4),
            n_items=ossm.n_items,
            avg_transaction_len=10.0,
            avg_pattern_len=4.0,
            n_patterns=40,
            seed=29,
        )
    ).generate()
    grown = extend_ossm(ossm, extra, page_size=100)
    grown_path = tmp_path / "grown.npz"
    grown.save(grown_path)
    grown_blob = grown_path.read_bytes()
    maps = {ossm.epoch: ossm}

    per_client = int(os.environ.get("REPRO_GATEWAY_BENCH_QUERIES", "25"))

    def fleet_streams(seed_base):
        return [
            (tenant, _query_stream(
                ossm.n_items, per_client,
                seed=seed_base + 37 * tenant_index + client,
            ))
            for tenant_index, tenant in enumerate(TENANTS)
            for client in range(CLIENTS_PER_TENANT)
        ]

    registry = TenantRegistry(linger=0.001)

    async def run():
        async with registry:
            for tenant in TENANTS:
                registry.create(tenant, ossm)
            registry.create(
                "metered", ossm,
                quota=TenantQuota(rate=METERED_RATE, burst=METERED_RATE),
            )
            async with Gateway(registry) as gateway:
                # Phase A — unloaded baseline: the fleet alone.
                base_results, base_wall = await _run_fleet(
                    gateway, fleet_streams(1000)
                )

                # Phase B — same fleet plus a noisy neighbour flooding
                # the metered tenant, and an epoch bump on t0 landing
                # once half the fleet's queries are in.
                shed_counts = {200: 0, 429: 0}
                fleet = _run_fleet(
                    gateway, fleet_streams(5000), bump=("t0", grown_blob)
                )
                abuse = asyncio.gather(*(
                    _abuser_client(gateway, per_client * 8, shed_counts)
                    for _ in range(ABUSER_CLIENTS)
                ))
                (load_results, load_wall), _ = await asyncio.gather(
                    fleet, abuse
                )

                # Exactness replay: 50 itemsets per tenant, batched
                # over HTTP, against the vectorized Equation (1) path
                # (upper_bounds wants one cardinality, so: all pairs).
                rng = random.Random(9)
                reader, writer = await asyncio.open_connection(
                    gateway.host, gateway.port
                )
                try:
                    for tenant in TENANTS:
                        sample = [
                            tuple(sorted(rng.sample(
                                range(ossm.n_items), 2
                            )))
                            for _ in range(50)
                        ]
                        status, payload = await _exchange(
                            reader, writer, "POST",
                            f"/v1/tenants/{tenant}/bounds",
                            json.dumps(
                                {"itemsets": [list(s) for s in sample]}
                            ).encode(),
                        )
                        assert status == 200
                        serving = maps[payload["epoch"]]
                        assert payload["bounds"] == list(
                            serving.upper_bounds(sample)
                        )
                finally:
                    writer.close()
                    await writer.wait_closed()
                return base_results, base_wall, load_results, load_wall, \
                    shed_counts

    maps[grown.epoch if grown.epoch > ossm.epoch else ossm.epoch + 1] = \
        grown
    base_results, base_wall, load_results, load_wall, shed_counts = \
        asyncio.run(run())

    # Zero dropped queries: every client got every answer (asserted
    # per-response in the client), and every bound is exact for the
    # map of the epoch that answered it — including across the bump.
    epochs_seen = set()
    for tenant in TENANTS:
        assert len(load_results[tenant]) == per_client * CLIENTS_PER_TENANT
        for itemset, epoch, bound, _latency in load_results[tenant]:
            epochs_seen.add((tenant, epoch))
            assert bound == maps[epoch].upper_bound(itemset)
    # The bump landed mid-run on t0: bounds were served under both the
    # old and the new epoch, each exact for its own map (checked above).
    t0_epochs = sorted(e for t, e in epochs_seen if t == "t0")
    assert len(t0_epochs) >= 2, t0_epochs

    # The flood was shed with 429s, not served beyond quota.
    assert shed_counts[429] > 0
    assert shed_counts[200] >= 1

    def p99(tenant_results):
        latencies = sorted(lat for *_rest, lat in tenant_results)
        return _percentile(latencies, 0.99)

    base_p99 = {t: p99(base_results[t]) for t in TENANTS}
    load_p99 = {t: p99(load_results[t]) for t in TENANTS}
    # Isolation: the abused quota never leaks into the other tenants'
    # tail. The 1 ms floor absorbs scheduler noise on sub-ms tails.
    for tenant in TENANTS:
        assert load_p99[tenant] <= 2 * max(base_p99[tenant], 1e-3), (
            tenant, base_p99[tenant], load_p99[tenant]
        )

    queries = {t: len(load_results[t]) for t in TENANTS}
    wall_tput = {
        t: queries[t] / load_wall for t in TENANTS
    }
    fairness = _jain(list(wall_tput.values()))
    n_fleet = len(TENANTS) * CLIENTS_PER_TENANT
    record = {
        "bench": "gateway",
        "clients": n_fleet + ABUSER_CLIENTS,
        "tenants": len(TENANTS) + 1,
        "queries": sum(queries.values()),
        "abuser_sheds_429": shed_counts[429],
        "abuser_served_200": shed_counts[200],
        "baseline_wall_seconds": round(base_wall, 4),
        "loaded_wall_seconds": round(load_wall, 4),
        "throughput_qps": round(sum(queries.values()) / load_wall, 1),
        "jain_fairness": round(fairness, 4),
        "per_tenant_p99_ms": {
            t: round(load_p99[t] * 1e3, 3) for t in TENANTS
        },
        "per_tenant_baseline_p99_ms": {
            t: round(base_p99[t] * 1e3, 3) for t in TENANTS
        },
        "epoch_bump_tenant": "t0",
        "epochs_served_t0": t0_epochs,
        "exactness_replay_samples": 50 * len(TENANTS),
    }
    emit_bench(record)
    assert fairness > 0.9, wall_tput

    rows = [
        [
            tenant,
            str(queries[tenant]),
            f"{wall_tput[tenant]:.0f}",
            f"{base_p99[tenant] * 1e3:.2f}",
            f"{load_p99[tenant] * 1e3:.2f}",
        ]
        for tenant in TENANTS
    ] + [
        [
            "metered",
            str(shed_counts[200]),
            "-",
            "-",
            f"(shed {shed_counts[429]} @429)",
        ]
    ]
    report(
        "Gateway — multi-tenant closed-loop load",
        format_table(
            ["tenant", "served", "qps", "base p99 ms", "loaded p99 ms"],
            rows,
        ),
    )
