"""Ablation A9: streaming OSSM maintenance vs batch segmentation.

The online layer (``repro.core.incremental``, after the Carma/SSM
setting of the paper's references [9, 10]) assigns each arriving page
to its loss-closest segment instead of re-segmenting. This ablation
quantifies the price of never looking back: one pass over the drifting
workload's pages through the streaming builder versus batch Greedy and
batch Random over the same pages, same budget.

Expected shape: streaming lands between Random and Greedy in pruning
power (it is loss-guided but order-constrained), at a per-page cost of
exactly ``n_user`` loss evaluations — independent of how much history
has accumulated.
"""

import pytest

from _shared import emit_bench, report
from repro.bench import (
    MINSUP,
    baseline,
    drifting_synthetic_pages,
    evaluate,
    format_table,
)
from repro.core import GreedySegmenter, RandomSegmenter
from repro.core.incremental import StreamingOSSMBuilder

P = 500
N_USER = 40


def _run():
    pages = drifting_synthetic_pages(P)
    db = pages.database
    base = baseline(db, MINSUP)

    cells = {}
    for name, segmenter in (
        ("batch-random", RandomSegmenter(seed=0)),
        ("batch-greedy", GreedySegmenter()),
    ):
        segmentation = segmenter.segment(pages, N_USER)
        cells[name] = (
            evaluate(db, segmentation.ossm, base, segmentation),
            segmentation.loss_evaluations,
        )

    builder = StreamingOSSMBuilder(db.n_items, N_USER)
    matrix = pages.page_supports()
    lengths = pages.page_lengths()
    for index in range(pages.n_pages):
        builder.add_page_row(matrix[index], size=int(lengths[index]))
    cells["streaming"] = (
        evaluate(db, builder.ossm(), base),
        builder.loss_evaluations,
    )
    return cells


@pytest.fixture(scope="module")
def experiment(once):
    return once("ablation_streaming", _run)


def test_streaming_table(benchmark, experiment):
    rows = [
        [name, evals, round(cell.c2_ratio, 3), round(cell.speedup, 2)]
        for name, (cell, evals) in experiment.items()
    ]
    report(
        f"Ablation A9 — streaming vs batch segmentation "
        f"(P={P}, n_user={N_USER})",
        format_table(
            ["strategy", "loss_evals", "C2_ratio", "speedup"], rows
        ),
    )
    for name, (cell, evals) in experiment.items():
        emit_bench({
            "bench": "ablation_streaming",
            "variant": name,
            "n_user": N_USER,
            "loss_evaluations": evals,
            "c2_ratio": round(cell.c2_ratio, 5),
            "speedup": round(cell.speedup, 4),
        })
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_streaming_cost_is_linear_in_pages(benchmark, experiment):
    """(P − n_user) pages each pay exactly n_user evaluations."""
    _, evals = experiment["streaming"]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert evals == (P - N_USER) * N_USER


def test_streaming_quality_between_random_and_batch_greedy(
    benchmark, experiment
):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    streaming = experiment["streaming"][0].c2_ratio
    greedy = experiment["batch-greedy"][0].c2_ratio
    random = experiment["batch-random"][0].c2_ratio
    assert greedy <= streaming + 0.02
    assert streaming <= random + 0.05  # loss guidance must show up
