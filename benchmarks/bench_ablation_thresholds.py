"""Ablation A4: query independence — one OSSM, many thresholds.

Section 3 of the paper: the OSSM is computed once at compile time and
"can be used regardless of how the support threshold is changed
dynamically during exploration-time" — unlike DHP's hash table or the
FP-tree, which are built per query. This ablation builds one OSSM and
sweeps the query threshold, verifying identical outputs and reporting
how the pruning power varies with the threshold.
"""

import pytest

from _shared import emit_bench, report
from repro.bench import (
    baseline,
    drifting_synthetic_pages,
    evaluate,
    format_table,
)
from repro.core import GreedySegmenter

P = 200
N_USER = 40
THRESHOLDS = (0.005, 0.01, 0.02, 0.05)


def _run():
    pages = drifting_synthetic_pages(P)
    db = pages.database
    segmentation = GreedySegmenter().segment(pages, N_USER)
    cells = []
    for minsup in THRESHOLDS:
        base = baseline(db, minsup)
        cell = evaluate(db, segmentation.ossm, base, segmentation)
        cells.append((minsup, cell, base.result.n_frequent))
    return cells


@pytest.fixture(scope="module")
def experiment(once):
    return once("ablation_thresholds", _run)


def test_threshold_sweep_table(benchmark, experiment):
    rows = [
        [
            f"{minsup:.2%}",
            frequent,
            round(cell.c2_ratio, 3),
            round(cell.speedup, 2),
        ]
        for minsup, cell, frequent in experiment
    ]
    report(
        f"Ablation A4 — one OSSM (Greedy, n={N_USER}) across query "
        "thresholds",
        format_table(
            ["minsup", "frequent", "C2_ratio", "speedup"], rows
        ),
    )
    for minsup, cell, frequent in experiment:
        emit_bench({
            "bench": "ablation_thresholds",
            "case": f"minsup={minsup}",
            "n_user": N_USER,
            "n_frequent": frequent,
            "c2_ratio": round(cell.c2_ratio, 5),
            "speedup": round(cell.speedup, 4),
        })
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_same_structure_serves_every_threshold(benchmark, experiment):
    """Every cell already passed the harness equality check; assert
    the structure pruned something at every threshold."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for minsup, cell, _ in experiment:
        assert cell.c2_ratio <= 1.0, minsup
    # At least one threshold sees real pruning.
    assert min(cell.c2_ratio for _, cell, _ in experiment) < 0.9
