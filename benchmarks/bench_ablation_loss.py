"""Ablation A1: the sort-based loss evaluator vs the paper-literal one.

DESIGN.md §2 documents the one deviation from the paper's
implementation: Equation (2) is evaluated as ``f(a+b) − f(a) − f(b)``
with the O(b log b) sort identity instead of the O(b²) pair loop. This
ablation (a) re-verifies exact numerical agreement on the real bench
workload's page rows, and (b) times both, quantifying why the naive
evaluator forces the paper's 5439-second Greedy runs.
"""

import time

import pytest

from _shared import emit_bench, report
from repro.bench import format_table, paged, regular_synthetic
from repro.core import merge_loss, merge_loss_naive

N_PAIRS = 60  # pairs of real page rows to compare


def _run():
    pages = paged(regular_synthetic())
    matrix = pages.page_supports()
    pairs = [
        (matrix[i], matrix[(i * 7 + 3) % matrix.shape[0]])
        for i in range(min(N_PAIRS, matrix.shape[0]))
    ]
    start = time.perf_counter()
    fast = [merge_loss(a, b) for a, b in pairs]
    fast_seconds = time.perf_counter() - start
    start = time.perf_counter()
    naive = [merge_loss_naive(a, b) for a, b in pairs]
    naive_seconds = time.perf_counter() - start
    return {
        "fast": fast,
        "naive": naive,
        "fast_seconds": fast_seconds,
        "naive_seconds": naive_seconds,
        "n_items": matrix.shape[1],
    }


@pytest.fixture(scope="module")
def experiment(once):
    return once("ablation_loss", _run)


def test_loss_evaluators_agree_exactly(benchmark, experiment):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert experiment["fast"] == experiment["naive"]


def test_loss_evaluator_speed(benchmark, experiment):
    rows = [
        [
            "sort O(m log m)",
            round(experiment["fast_seconds"], 4),
            round(experiment["fast_seconds"] / N_PAIRS * 1e6, 1),
        ],
        [
            "naive O(m^2)",
            round(experiment["naive_seconds"], 4),
            round(experiment["naive_seconds"] / N_PAIRS * 1e6, 1),
        ],
    ]
    report(
        f"Ablation A1 — Equation (2) evaluators "
        f"({N_PAIRS} page-row pairs, m={experiment['n_items']})",
        format_table(["evaluator", "total_s", "per_pair_us"], rows),
    )
    emit_bench({
        "bench": "ablation_loss",
        "fast_seconds": round(experiment["fast_seconds"], 6),
        "naive_seconds": round(experiment["naive_seconds"], 6),
        "speedup": round(
            experiment["naive_seconds"] / experiment["fast_seconds"], 3
        ),
    })
    pages = paged(regular_synthetic())
    matrix = pages.page_supports()
    benchmark.pedantic(
        lambda: merge_loss(matrix[0], matrix[1]), rounds=5, iterations=1
    )
    assert experiment["fast_seconds"] < experiment["naive_seconds"]
