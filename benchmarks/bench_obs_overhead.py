"""Overhead of disabled observability on the Apriori hot path.

DESIGN.md's no-op-by-default contract: with no registry/recorder
configured, the instrumentation threaded through the miners must cost
(nearly) nothing. This module times the shipped (instrumented) Apriori
against a local un-instrumented replica of its level loop — the same
candidate generation and the same counting engine, minus every obs
call — and asserts the ratio stays close to 1. The paper-facing
speedup figures depend on this: if disabled telemetry taxed the
baseline, every reported ratio would be polluted.

The export plane (PR 6) rides the same contract: with the default
NULL registry, worker pools must not wrap tasks for delta shipping
and the serve SLO instrumentation must reduce to one ``enabled``
check. The second test here covers those paths.

The assertion threshold here is looser than the 5% target because
wall-clock noise on shared CI hardware easily exceeds the real cost;
``tests/obs/test_overhead.py`` runs the same comparison with an even
more generous bound on every test run.
"""

from __future__ import annotations

import time

from _shared import emit_bench, report
from repro.bench import format_table
from repro.data import generate_quest
from repro.mining.apriori import Apriori
from repro.mining.counting import SubsetCounter
from repro.mining.itemsets import apriori_gen
from repro.obs import MetricsRegistry, SlidingQuantile, use_registry
from repro.parallel.pool import WorkerPool

#: Generous CI bound; the typical observed ratio is within a few
#: percent of 1.0 (the 5% engineering target).
MAX_OVERHEAD_RATIO = 1.25

MAX_LEVEL = 3
MINSUP = 0.02
REPEATS = 5


def plain_apriori(database, min_support, max_level=MAX_LEVEL):
    """Un-instrumented replica of the Apriori level loop.

    Byte-for-byte the mining logic of :class:`repro.mining.apriori.
    Apriori` before the observability layer existed: no spans, no
    registry lookups, no logging — the reference the overhead contract
    is measured against.
    """
    from repro.mining.base import resolve_min_support

    threshold = resolve_min_support(database, min_support)
    counter = SubsetCounter()
    frequent: dict[tuple[int, ...], int] = {}

    supports = database.item_supports()
    frequent_prev = []
    for item in range(database.n_items):
        support = int(supports[item])
        if support >= threshold:
            frequent[(item,)] = support
            frequent_prev.append((item,))

    k = 2
    while frequent_prev and k <= max_level:
        candidates = apriori_gen(frequent_prev)
        if not candidates:
            break
        counts = counter._count(database, candidates)
        frequent_prev = []
        for itemset, support in counts.items():
            if support >= threshold:
                frequent[itemset] = support
                frequent_prev.append(itemset)
        frequent_prev.sort()
        k += 1
    return frequent


def best_of(fn, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_disabled_observability_overhead(benchmark):
    db = generate_quest(
        n_transactions=2000, n_items=200, n_patterns=400, seed=11
    )
    miner = Apriori(max_level=MAX_LEVEL)

    plain_seconds = best_of(lambda: plain_apriori(db, MINSUP))
    instrumented_seconds = best_of(lambda: miner.mine(db, MINSUP))
    benchmark.pedantic(
        lambda: miner.mine(db, MINSUP), rounds=1, iterations=1
    )

    # Same answers, first of all.
    assert miner.mine(db, MINSUP).frequent == plain_apriori(db, MINSUP)

    ratio = instrumented_seconds / plain_seconds
    report(
        "Observability overhead — instrumented-but-disabled Apriori",
        format_table(
            ["variant", "best_s", "ratio"],
            [
                ["plain (no instrumentation)", plain_seconds, 1.0],
                ["instrumented, obs disabled", instrumented_seconds, ratio],
            ],
        ),
    )
    emit_bench({
        "bench": "obs_overhead",
        "plain_seconds": round(plain_seconds, 4),
        "instrumented_seconds": round(instrumented_seconds, 4),
        "overhead_ratio": round(ratio, 4),
    })
    assert ratio <= MAX_OVERHEAD_RATIO, (
        f"disabled instrumentation cost {ratio:.2f}x "
        f"(target ~1.05x, ceiling {MAX_OVERHEAD_RATIO}x)"
    )


def test_export_plane_disabled_costs_nothing(benchmark):
    """The PR 6 export plane stays behind the no-op default.

    Structural, not wall-clock: with the NULL registry active a
    WorkerPool must not wrap its tasks in the delta-shipping shim at
    all (``forwards_metrics`` is False — workers return raw results),
    and it must start doing so the moment a real registry is active.
    The quantile estimator is also micro-timed: it lives on the serve
    request path, so one observation must stay sub-microsecond-ish
    (generous CI bound below).
    """
    with WorkerPool(2) as pool:
        assert pool.forwards_metrics is False
    with use_registry(MetricsRegistry()):
        with WorkerPool(2) as pool:
            assert pool.forwards_metrics is True

    estimator = SlidingQuantile()
    n = 20_000
    start = time.perf_counter()
    for i in range(n):
        estimator.observe(i * 1e-6)
    per_observe = (time.perf_counter() - start) / n
    benchmark.pedantic(
        lambda: estimator.observe(1e-3), rounds=1, iterations=1
    )
    report(
        "Observability overhead — export plane",
        format_table(
            ["check", "value"],
            [
                ["pool wraps tasks when obs disabled", "no"],
                ["pool wraps tasks when obs enabled", "yes"],
                ["SlidingQuantile.observe µs", round(per_observe * 1e6, 3)],
            ],
        ),
    )
    emit_bench({
        "bench": "obs_overhead",
        "case": "export_plane",
        "observe_us": round(per_observe * 1e6, 4),
    })
    # 50 µs is ~100x the typical cost — pure regression tripwire.
    assert per_observe < 50e-6
